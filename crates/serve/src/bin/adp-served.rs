//! `adp-served` — the durable session server.
//!
//! Binds a TCP listener, loads any sessions spilled by a previous run from
//! the spill directory (same ids, same trajectories), and serves the
//! JSON-lines protocol until killed. See the `adp_serve::server` module
//! docs for the protocol and the README's "Durable serving" quickstart for
//! a session walkthrough.
//!
//! ```text
//! adp-served [--addr 127.0.0.1:7878] [--shards 4] [--spill-dir DIR]
//!            [--max-resident N] [--read-timeout-secs SECS]
//! ```
//!
//! `--spill-dir` falls back to `ADP_SPILL_DIR`; without either the server
//! runs purely in memory (snapshot/save_all requests report the missing
//! directory instead of failing the session). `--max-resident` caps hot
//! sessions (falls back to `ADP_MAX_RESIDENT`; least-recently-touched
//! sessions spill and resume transparently). `--read-timeout-secs` sets
//! the idle disconnect (falls back to `ADP_READ_TIMEOUT_SECS`, default
//! 900; 0 disables).

use adp_serve::server::Server;
use adp_serve::SessionHub;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    addr: String,
    shards: usize,
    spill_dir: Option<String>,
    max_resident: Option<usize>,
    read_timeout_secs: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        shards: 4,
        spill_dir: None,
        max_resident: None,
        read_timeout_secs: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--spill-dir" => args.spill_dir = Some(value("--spill-dir")?),
            "--max-resident" => {
                args.max_resident = Some(
                    value("--max-resident")?
                        .parse()
                        .map_err(|e| format!("--max-resident: {e}"))?,
                )
            }
            "--read-timeout-secs" => {
                args.read_timeout_secs = Some(
                    value("--read-timeout-secs")?
                        .parse()
                        .map_err(|e| format!("--read-timeout-secs: {e}"))?,
                )
            }
            "--help" | "-h" => {
                return Err(
                    "usage: adp-served [--addr HOST:PORT] [--shards N] [--spill-dir DIR] \
                     [--max-resident N] [--read-timeout-secs SECS]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let hub = match &args.spill_dir {
        Some(dir) => SessionHub::with_spill_dir(args.shards, dir),
        None => SessionHub::new(args.shards), // honours ADP_SPILL_DIR
    };
    if let Some(cap) = args.max_resident {
        // 0 means "no budget", mirroring ADP_MAX_RESIDENT=0.
        hub.set_memory_budget(if cap == 0 { None } else { Some(cap) });
    }
    match hub.memory_budget() {
        Some(cap) => println!("memory budget: {cap} resident session(s)"),
        None => println!("no memory budget; sessions stay resident until closed"),
    }
    match hub.spill_dir() {
        Some(dir) => {
            println!("spill directory: {}", dir.display());
            match hub.load_all() {
                Ok(loaded) if loaded.is_empty() => println!("no spilled sessions to load"),
                Ok(loaded) => println!("resumed {} session(s): {loaded:?}", loaded.len()),
                Err(e) => {
                    eprintln!("failed to load spilled sessions: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => println!("no spill directory configured; sessions are in-memory only"),
    }
    let server = match args.read_timeout_secs {
        Some(secs) => {
            let timeout = (secs > 0).then(|| Duration::from_secs(secs));
            Server::bind_with_timeout(args.addr.as_str(), Arc::new(hub), timeout)
        }
        None => Server::bind(args.addr.as_str(), Arc::new(hub)), // honours ADP_READ_TIMEOUT_SECS
    };
    let server = match server {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("adp-served listening on {}", server.addr());
    println!("scrape metrics: curl http://{}/metrics", server.addr());
    // Serve until the process is killed; durable state is whatever clients
    // spilled via `snapshot` / `save_all` (crash-consistent by the atomic
    // rename in the persistence layer).
    loop {
        std::thread::park();
    }
}
