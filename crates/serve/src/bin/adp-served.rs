//! `adp-served` — the durable session server.
//!
//! Binds a TCP listener, loads any sessions spilled by a previous run from
//! the spill directory (same ids, same trajectories), and serves the
//! JSON-lines protocol until killed. See the `adp_serve::server` module
//! docs for the protocol and the README's "Durable serving" quickstart for
//! a session walkthrough.
//!
//! ```text
//! adp-served [--addr 127.0.0.1:7878] [--shards 4] [--spill-dir DIR]
//! ```
//!
//! `--spill-dir` falls back to `ADP_SPILL_DIR`; without either the server
//! runs purely in memory (snapshot/save_all requests report the missing
//! directory instead of failing the session).

use adp_serve::server::Server;
use adp_serve::SessionHub;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    addr: String,
    shards: usize,
    spill_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        shards: 4,
        spill_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--spill-dir" => args.spill_dir = Some(value("--spill-dir")?),
            "--help" | "-h" => {
                return Err(
                    "usage: adp-served [--addr HOST:PORT] [--shards N] [--spill-dir DIR]".into(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let hub = match &args.spill_dir {
        Some(dir) => SessionHub::with_spill_dir(args.shards, dir),
        None => SessionHub::new(args.shards), // honours ADP_SPILL_DIR
    };
    match hub.spill_dir() {
        Some(dir) => {
            println!("spill directory: {}", dir.display());
            match hub.load_all() {
                Ok(loaded) if loaded.is_empty() => println!("no spilled sessions to load"),
                Ok(loaded) => println!("resumed {} session(s): {loaded:?}", loaded.len()),
                Err(e) => {
                    eprintln!("failed to load spilled sessions: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => println!("no spill directory configured; sessions are in-memory only"),
    }
    let server = match Server::bind(args.addr.as_str(), Arc::new(hub)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("adp-served listening on {}", server.addr());
    // Serve until the process is killed; durable state is whatever clients
    // spilled via `snapshot` / `save_all` (crash-consistent by the atomic
    // rename in the persistence layer).
    loop {
        std::thread::park();
    }
}
