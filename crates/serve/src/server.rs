//! The `adp-served` network front end: JSON-lines over TCP, one blocking
//! thread per connection, every request routed to the shared [`SessionHub`].
//!
//! One request per line, one response per line. Every response carries
//! `"ok"`; failures put the error's display text in `"error"` and never
//! tear the connection down. The protocol:
//!
//! | request                                                        | response                                   |
//! |----------------------------------------------------------------|--------------------------------------------|
//! | `{"cmd":"create","dataset":"Youtube","scale":"tiny",`           | `{"ok":true,"session":0}`                  |
//! | ` "data_seed":7,"seed":5[,"parallel":false]}`                   |                                            |
//! | `{"cmd":"create_spec","spec":{"dataset":{…},"session":{…},`     | `{"ok":true,"session":0}`                  |
//! | ` "schedule":{…},"budget":64}}` (see [`crate::spec_json`])      |                                            |
//! | `{"cmd":"open","session":0}`                                    | `{"ok":true,"session":0,"iteration":8,...}`|
//! | `{"cmd":"step","session":0}`                                    | `{"ok":true,"iteration":1,"query":88,...}` |
//! | `{"cmd":"step_batch","session":0,"k":5}`                        | `{"ok":true,"outcomes":[…]}`               |
//! | `{"cmd":"run","session":0,"iterations":10}`                     | `{"ok":true}`                              |
//! | `{"cmd":"evaluate","session":0}`                                | `{"ok":true,"test_accuracy":0.6,…}`        |
//! | `{"cmd":"snapshot","session":0}`                                | `{"ok":true,"path":"…/session-0.adpsnap"}` |
//! | `{"cmd":"save_all"}`                                            | `{"ok":true,"saved":[0,1]}`                |
//! | `{"cmd":"recover","session":0,"iteration":8}`                   | `{"ok":true,"session":3,"iteration":8}`    |
//! | `{"cmd":"close","session":0}`                                   | `{"ok":true}`                              |
//! | `{"cmd":"run_spec","spec":{…}[,"max_batches":N]}`               | `{"ok":true,"done":true,"iterations":48,…}`|
//! | `{"cmd":"run_spec","resume":"<hex>","max_batches":N}`           | `{"ok":true,"done":false,"snapshot":"…"}`  |
//! | `{"cmd":"metrics"}`                                             | `{"ok":true,"text":"# HELP adp_…"}`        |
//! | `{"cmd":"health"}`                                              | `{"ok":true,"healthy":true,"shards":[…]}`  |
//!
//! `run_spec` is the distributed sweep's verb (see the `adp-coord`
//! binary): it runs one whole grid cell — or, with `max_batches`, a
//! bounded slice of one — on an **ephemeral** engine, no session id
//! involved. A finished cell replies `done:true` with the sweep row
//! fields (`iterations`, `refits`, `test_accuracy`, `wall_ms`); an
//! unfinished slice replies `done:false` with a hex-encoded boundary
//! snapshot that resumes the cell on this worker or any other (shipped
//! back via `resume`). Snapshots at paper scales are well under the 1 MiB
//! request-line cap.
//!
//! `metrics` returns the hub's Prometheus text exposition (see
//! [`crate::metrics`]) inside the JSON reply; `health` reports per-shard
//! liveness and the hot/cold tiering gauges. Both are also served over a
//! minimal **HTTP shim**: a connection whose first line is an HTTP
//! request (`GET /metrics`, `GET /health`, or `HEAD` of either) gets a
//! one-shot `HTTP/1.1` response and the connection closes — enough for
//! `curl` and a Prometheus scrape config, no HTTP stack required.
//!
//! Connections are guarded by a **read timeout** (`ADP_READ_TIMEOUT_SECS`,
//! default 900, `0` disables; or [`Server::bind_with_timeout`]): a client
//! that goes silent past it receives one final
//! `{"ok":false,"error":"idle timeout…"}` line and is disconnected, so a
//! stalled peer cannot pin a handler thread forever.
//!
//! When the requested session is journalled (the hub has a spill directory
//! and the engine snapshots), the `open` reply also carries
//! `checkpoint_iteration`, `durable_iteration` and `live_segments` — the
//! [`DurabilityStatus`](crate::journal::DurabilityStatus) fields. `recover`
//! rebuilds the state `session` had at any journalled commit point as a
//! **new** session and returns its id; the source session is untouched.
//!
//! Sessions created here are opened through [`SessionHub::open_spec`], so
//! they persist across restarts: `save_all` (or per-session `snapshot`)
//! spills them, and a freshly started server with the same spill directory
//! re-serves them **under their original ids** after
//! [`SessionHub::load_all`] — the kill/reload/resume cycle the integration
//! test drives.

use crate::hub::{CellProgress, CellStart, HubHealth, ServeError, SessionHub, SessionId};
use crate::json::Json;
use crate::spec_json::scenario_from_json;
use activedp::{ScenarioSpec, SessionSnapshot, StepOutcome};
use adp_data::{DatasetId, DatasetSpec, Scale};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Executes one protocol request against the hub. Pure request→response —
/// the socket loop just frames lines around this, and tests can drive it
/// directly.
pub fn handle_line(hub: &SessionHub, line: &str) -> Json {
    let request = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return error_reply(format!("bad json: {e}")),
    };
    match dispatch(hub, &request) {
        Ok(reply) => reply,
        Err(e) => error_reply(e),
    }
}

fn error_reply(message: impl std::fmt::Display) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
    ])
}

fn ok_reply(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(fields);
    Json::obj(all)
}

fn field<'a>(request: &'a Json, key: &str) -> Result<&'a Json, String> {
    request.get(key).ok_or_else(|| format!("missing \"{key}\""))
}

fn u64_field(request: &Json, key: &str) -> Result<u64, String> {
    field(request, key)?
        .as_u64()
        .ok_or_else(|| format!("\"{key}\" must be a non-negative integer"))
}

fn session_field(request: &Json) -> Result<SessionId, String> {
    Ok(SessionId::from_raw(u64_field(request, "session")?))
}

fn serve_err(e: ServeError) -> String {
    e.to_string()
}

fn dispatch(hub: &SessionHub, request: &Json) -> Result<Json, String> {
    let cmd = field(request, "cmd")?
        .as_str()
        .ok_or("\"cmd\" must be a string")?;
    match cmd {
        "create" => {
            // The flat per-field form, kept for simple clients; it is
            // sugar that assembles the same ScenarioSpec `create_spec`
            // takes whole.
            let dataset = field(request, "dataset")?
                .as_str()
                .ok_or("\"dataset\" must be a string")?;
            let id = DatasetId::from_name(dataset)
                .ok_or_else(|| format!("unknown dataset {dataset:?}"))?;
            let scale_name = field(request, "scale")?
                .as_str()
                .ok_or("\"scale\" must be a string")?;
            let scale = Scale::from_name(scale_name)
                .ok_or_else(|| format!("unknown scale {scale_name:?}"))?;
            let data_seed = u64_field(request, "data_seed")?;
            let seed = u64_field(request, "seed")?;
            let mut spec = ScenarioSpec::new(DatasetSpec {
                id,
                scale,
                seed: data_seed,
            });
            spec.session.seed = seed;
            if let Some(parallel) = request.get("parallel") {
                spec.session.parallel =
                    parallel.as_bool().ok_or("\"parallel\" must be a boolean")?;
            }
            let session = hub.create_from_spec(spec).map_err(serve_err)?;
            Ok(ok_reply([("session", Json::int(session.raw()))]))
        }
        "create_spec" => {
            // The declarative form: one JSON ScenarioSpec, verbatim.
            let spec = scenario_from_json(field(request, "spec")?)?;
            let session = hub.create_from_spec(spec).map_err(serve_err)?;
            Ok(ok_reply([("session", Json::int(session.raw()))]))
        }
        "open" => {
            let id = session_field(request)?;
            let status = hub.status(id).map_err(serve_err)?;
            let mut fields = vec![
                ("session", Json::int(id.raw())),
                ("iteration", Json::int(status.iteration as u64)),
                ("n_lfs", Json::int(status.n_lfs as u64)),
                ("n_selected", Json::int(status.n_selected as u64)),
            ];
            if let Some(d) = status.durability {
                fields.extend([
                    (
                        "checkpoint_iteration",
                        Json::int(d.checkpoint_iteration as u64),
                    ),
                    ("durable_iteration", Json::int(d.durable_iteration as u64)),
                    ("live_segments", Json::int(d.live_segments as u64)),
                ]);
            }
            if let Some(r) = status.route {
                fields.extend([
                    ("cheap_queries", Json::int(r.cheap_queries)),
                    ("expensive_queries", Json::int(r.expensive_queries)),
                    ("escalations", Json::int(r.escalations)),
                    ("cheap_cost", Json::Num(r.cheap_cost)),
                    ("expensive_cost", Json::Num(r.expensive_cost)),
                ]);
            }
            Ok(ok_reply(fields))
        }
        "step" => {
            let id = session_field(request)?;
            let outcome = hub.step(id).map_err(serve_err)?;
            Ok(ok_reply(outcome_fields(&outcome)))
        }
        "step_batch" => {
            let id = session_field(request)?;
            let k = u64_field(request, "k")? as usize;
            let outcomes = hub.step_batch(id, k).map_err(serve_err)?;
            let items = outcomes
                .iter()
                .map(|o| Json::obj(outcome_fields(o)))
                .collect();
            Ok(ok_reply([("outcomes", Json::Arr(items))]))
        }
        "run" => {
            let id = session_field(request)?;
            let iterations = u64_field(request, "iterations")? as usize;
            hub.run(id, iterations).map_err(serve_err)?;
            Ok(ok_reply([]))
        }
        "evaluate" => {
            let id = session_field(request)?;
            let report = hub.evaluate(id).map_err(serve_err)?;
            let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
            Ok(ok_reply([
                ("test_accuracy", Json::Num(report.test_accuracy)),
                ("label_accuracy", opt(report.label_accuracy)),
                ("label_coverage", Json::Num(report.label_coverage)),
                ("threshold", opt(report.threshold)),
                ("n_selected", Json::int(report.n_selected as u64)),
                ("downstream_trained", Json::Bool(report.downstream_trained)),
            ]))
        }
        "snapshot" => {
            let id = session_field(request)?;
            let path = hub.save(id).map_err(serve_err)?;
            Ok(ok_reply([("path", Json::Str(path.display().to_string()))]))
        }
        "save_all" => {
            let saved = hub.save_all().map_err(serve_err)?;
            Ok(ok_reply([(
                "saved",
                Json::Arr(saved.iter().map(|id| Json::int(id.raw())).collect()),
            )]))
        }
        "recover" => {
            let id = session_field(request)?;
            let iteration = u64_field(request, "iteration")? as usize;
            let recovered = hub.recover(id, iteration).map_err(serve_err)?;
            Ok(ok_reply([
                ("session", Json::int(recovered.raw())),
                ("iteration", Json::int(iteration as u64)),
            ]))
        }
        "close" => {
            let id = session_field(request)?;
            hub.close(id).map_err(serve_err)?;
            Ok(ok_reply([]))
        }
        "run_spec" => {
            // The distributed sweep's unit of work: run a whole cell (no
            // "max_batches") or a bounded slice of one, from a fresh spec
            // or a shipped checkpoint. Stateless between calls — no
            // session id is allocated; a partial reply carries the
            // boundary snapshot (hex) the coordinator resumes with, on
            // this worker or any other.
            let max_batches = match request.get("max_batches") {
                None => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or("\"max_batches\" must be a non-negative integer")?
                        as usize,
                ),
            };
            let start = match request.get("resume") {
                Some(resume) => {
                    let hex = resume.as_str().ok_or("\"resume\" must be a hex string")?;
                    let bytes = crate::hex::decode(hex).map_err(|e| format!("bad resume: {e}"))?;
                    let snapshot = SessionSnapshot::from_bytes(&bytes)
                        .map_err(|e| format!("bad resume snapshot: {e}"))?;
                    CellStart::Resume(Box::new(snapshot))
                }
                None => CellStart::Spec(Box::new(scenario_from_json(field(request, "spec")?)?)),
            };
            match hub.run_cell(start, max_batches).map_err(serve_err)? {
                CellProgress::Done(cell) => Ok(ok_reply([
                    ("done", Json::Bool(true)),
                    ("iterations", Json::int(cell.iterations as u64)),
                    ("refits", Json::int(cell.refits as u64)),
                    ("test_accuracy", Json::Num(cell.test_accuracy)),
                    ("wall_ms", Json::Num(cell.wall_ms)),
                    ("cheap_fraction", Json::Num(cell.cheap_fraction)),
                    ("routed_cost", Json::Num(cell.routed_cost)),
                    ("recovery", Json::Num(cell.recovery)),
                ])),
                CellProgress::Partial {
                    iteration,
                    wall_ms,
                    snapshot,
                } => Ok(ok_reply([
                    ("done", Json::Bool(false)),
                    ("iteration", Json::int(iteration as u64)),
                    ("wall_ms", Json::Num(wall_ms)),
                    (
                        "snapshot",
                        Json::Str(crate::hex::encode(&snapshot.to_bytes())),
                    ),
                ])),
            }
        }
        "metrics" => Ok(ok_reply([("text", Json::Str(hub.metrics().render()))])),
        "health" => Ok(ok_reply(health_fields(&hub.health()))),
        other => Err(format!("unknown cmd {other:?}")),
    }
}

fn health_fields(health: &HubHealth) -> Vec<(&'static str, Json)> {
    let shards = health
        .shards
        .iter()
        .map(|s| {
            Json::obj([
                ("shard", Json::int(s.shard as u64)),
                ("alive", Json::Bool(s.alive)),
                ("resident", Json::int(s.resident as u64)),
            ])
        })
        .collect();
    vec![
        ("healthy", Json::Bool(health.all_alive())),
        ("shards", Json::Arr(shards)),
        ("resident", Json::int(health.resident as u64)),
        ("cold", Json::int(health.cold as u64)),
        (
            "max_resident",
            health
                .max_resident
                .map(|c| Json::int(c as u64))
                .unwrap_or(Json::Null),
        ),
        ("evicted_total", Json::int(health.evicted_total)),
        ("resumed_total", Json::int(health.resumed_total)),
    ]
}

fn outcome_fields(o: &StepOutcome) -> Vec<(&'static str, Json)> {
    vec![
        ("iteration", Json::int(o.iteration as u64)),
        (
            "query",
            o.query.map(|q| Json::int(q as u64)).unwrap_or(Json::Null),
        ),
        (
            "lf",
            o.lf.as_ref()
                .map(|lf| Json::Str(format!("{:?}", lf.key())))
                .unwrap_or(Json::Null),
        ),
        ("n_lfs", Json::int(o.n_lfs as u64)),
        ("n_selected", Json::int(o.n_selected as u64)),
        (
            "route",
            match o.route {
                Some(activedp::RouteChoice::Cheap) => Json::Str("cheap".into()),
                Some(activedp::RouteChoice::Expensive) => Json::Str("expensive".into()),
                Some(activedp::RouteChoice::Escalated) => Json::Str("escalated".into()),
                None => Json::Null,
            },
        ),
    ]
}

/// A running `adp-served` front end: a TCP accept loop over a shared
/// [`SessionHub`], one handler thread per connection.
pub struct Server {
    addr: SocketAddr,
    hub: Arc<SessionHub>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Default idle read timeout: 15 minutes, generous for an interactive
/// client, finite for a stalled one.
const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(900);

/// The configured connection read timeout: `ADP_READ_TIMEOUT_SECS` when
/// set (0 disables), else 15 minutes.
fn read_timeout_from_env() -> Option<Duration> {
    match std::env::var("ADP_READ_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
    {
        Some(0) => None,
        Some(secs) => Some(Duration::from_secs(secs)),
        None => Some(DEFAULT_READ_TIMEOUT),
    }
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting connections against `hub`. Connections idle past the
    /// `ADP_READ_TIMEOUT_SECS` read timeout (default 900 s; `0` disables)
    /// are disconnected; see [`Server::bind_with_timeout`] to set it
    /// programmatically.
    pub fn bind(addr: impl ToSocketAddrs, hub: Arc<SessionHub>) -> std::io::Result<Server> {
        Self::bind_with_timeout(addr, hub, read_timeout_from_env())
    }

    /// [`Server::bind`] with an explicit per-connection read timeout
    /// (`None` waits forever, the pre-timeout behaviour).
    pub fn bind_with_timeout(
        addr: impl ToSocketAddrs,
        hub: Arc<SessionHub>,
        read_timeout: Option<Duration>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_hub = hub.clone();
        let accept_stop = stop.clone();
        let accept_thread = std::thread::Builder::new()
            .name("adp-served-accept".into())
            .spawn(move || accept_loop(listener, accept_hub, accept_stop, read_timeout))?;
        Ok(Server {
            addr,
            hub,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hub this server fronts.
    pub fn hub(&self) -> &Arc<SessionHub> {
        &self.hub
    }

    /// Stops accepting connections and joins the accept loop. Open
    /// connections finish on their own when clients disconnect; live
    /// sessions stay in the hub (spill them with
    /// [`SessionHub::save_all`] for a durable shutdown).
    pub fn shutdown(mut self) -> Arc<SessionHub> {
        self.stop_accepting();
        self.hub.clone()
    }

    fn stop_accepting(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept call with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

fn accept_loop(
    listener: TcpListener,
    hub: Arc<SessionHub>,
    stop: Arc<AtomicBool>,
    read_timeout: Option<Duration>,
) {
    // Handler threads park their handles here (only this thread touches
    // the list); finished ones are reaped opportunistically so a
    // long-lived server doesn't accumulate them.
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Request/response with small line-framed writes: Nagle's
        // algorithm would add a delayed-ACK stall to every exchange.
        let _ = stream.set_nodelay(true);
        let hub = hub.clone();
        if let Ok(handle) = std::thread::Builder::new()
            .name("adp-served-conn".into())
            .spawn(move || connection_loop(stream, &hub, read_timeout))
        {
            handlers.retain(|h| !h.is_finished());
            handlers.push(handle);
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Longest request line a connection may send (1 MiB). Requests are tiny
/// (< 200 bytes); the cap keeps a hostile newline-less stream from growing
/// a line buffer without bound.
const MAX_LINE_BYTES: u64 = 1 << 20;

fn connection_loop(stream: TcpStream, hub: &SessionHub, read_timeout: Option<Duration>) {
    // The timeout applies to the shared socket, so it covers both the
    // reader clone below and (harmlessly) writes.
    let _ = stream.set_read_timeout(read_timeout);
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    loop {
        let mut line = String::new();
        // A fresh `take` budget per line bounds each read; a line that
        // fills the whole budget without a newline is hostile or garbage —
        // drop the connection rather than resynchronise mid-stream.
        match std::io::Read::take(&mut reader, MAX_LINE_BYTES).read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if !line.ends_with('\n') && line.len() as u64 == MAX_LINE_BYTES => break,
            Ok(_) => {}
            // The typed idle-disconnect path: a peer silent past the read
            // timeout gets one final error line, then the connection ends
            // — its handler thread is reclaimed instead of pinned forever.
            // (Unix reports a timed-out read as WouldBlock, Windows as
            // TimedOut.)
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                let timeout = read_timeout.unwrap_or_default();
                let reply = error_reply(format!(
                    "idle timeout: no request within {} s",
                    timeout.as_secs()
                ));
                let _ = writeln!(writer, "{reply}");
                break;
            }
            Err(_) => break,
        }
        // HTTP shim: a connection whose first line is an HTTP request is a
        // scrape, not a protocol client — answer it one-shot and close.
        if line.starts_with("GET ") || line.starts_with("HEAD ") {
            serve_http(&mut reader, &mut writer, hub, &line);
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(hub, &line);
        if writeln!(writer, "{reply}").is_err() {
            break;
        }
    }
}

/// Answers one HTTP request on a connection that turned out to be a
/// scraper: `GET`/`HEAD` of `/metrics` (Prometheus text) or `/health`
/// (the health JSON; `503` when a shard is dead), `404` for anything
/// else. Always `Connection: close` — the shim serves exactly one
/// response.
fn serve_http(reader: &mut impl BufRead, writer: &mut TcpStream, hub: &SessionHub, first: &str) {
    // Drain the request headers (bounded — a scraper sends a handful).
    let mut header = String::new();
    for _ in 0..100 {
        header.clear();
        match std::io::Read::take(&mut *reader, 8192).read_line(&mut header) {
            Ok(0) | Err(_) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
        }
    }
    let mut parts = first.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            hub.metrics().render(),
        ),
        "/health" => {
            let health = hub.health();
            let status = if health.all_alive() {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            let body = format!("{}\n", Json::obj(health_fields(&health)));
            (status, "application/json; charset=utf-8", body)
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let _ = write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    if method != "HEAD" {
        let _ = writer.write_all(body.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> SessionHub {
        SessionHub::with_shards_and_spill(2, None)
    }

    fn create_line(seed: u64) -> String {
        format!(
            r#"{{"cmd":"create","dataset":"Youtube","scale":"tiny","data_seed":7,"seed":{seed}}}"#
        )
    }

    #[test]
    fn create_step_evaluate_close_over_the_protocol() {
        let hub = hub();
        let reply = handle_line(&hub, &create_line(5));
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true), "{reply}");
        let session = reply.get("session").unwrap().as_u64().unwrap();

        let step = handle_line(&hub, &format!(r#"{{"cmd":"step","session":{session}}}"#));
        assert_eq!(step.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(step.get("iteration").unwrap().as_u64(), Some(1));

        let batch = handle_line(
            &hub,
            &format!(r#"{{"cmd":"step_batch","session":{session},"k":3}}"#),
        );
        assert_eq!(batch.get("outcomes").unwrap().as_array().unwrap().len(), 3);

        let run = handle_line(
            &hub,
            &format!(r#"{{"cmd":"run","session":{session},"iterations":2}}"#),
        );
        assert_eq!(run.get("ok").unwrap().as_bool(), Some(true));

        let open = handle_line(&hub, &format!(r#"{{"cmd":"open","session":{session}}}"#));
        assert_eq!(open.get("iteration").unwrap().as_u64(), Some(6));

        let eval = handle_line(
            &hub,
            &format!(r#"{{"cmd":"evaluate","session":{session}}}"#),
        );
        let acc = eval.get("test_accuracy").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&acc));

        let close = handle_line(&hub, &format!(r#"{{"cmd":"close","session":{session}}}"#));
        assert_eq!(close.get("ok").unwrap().as_bool(), Some(true));
        let gone = handle_line(&hub, &format!(r#"{{"cmd":"step","session":{session}}}"#));
        assert_eq!(gone.get("ok").unwrap().as_bool(), Some(false));
        assert!(gone
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("unknown"));
    }

    #[test]
    fn create_spec_builds_the_described_session() {
        let hub = hub();
        // A declarative batch-16 QBC session, straight from JSON.
        let reply = handle_line(
            &hub,
            r#"{"cmd":"create_spec","spec":{
                "dataset":{"id":"youtube","scale":"tiny","seed":7},
                "session":{"seed":5,"sampler":"QBC","parallel":false},
                "schedule":{"kind":"fixed_batch","k":4},
                "budget":8}}"#,
        );
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true), "{reply}");
        let session = reply.get("session").unwrap().as_u64().unwrap();
        let step = handle_line(&hub, &format!(r#"{{"cmd":"step","session":{session}}}"#));
        assert_eq!(step.get("ok").unwrap().as_bool(), Some(true));

        // Invalid specs die at validation, before any id is allocated.
        for bad in [
            r#"{"cmd":"create_spec","spec":{
                "dataset":{"id":"youtube","scale":"tiny","seed":7},
                "schedule":{"kind":"fixed_batch","k":0}}}"#,
            r#"{"cmd":"create_spec","spec":{
                "dataset":{"id":"youtube","scale":"tiny","seed":7},
                "session":{"sampler":"oracle"}}}"#,
            r#"{"cmd":"create_spec"}"#,
        ] {
            let reply = handle_line(&hub, bad);
            assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false), "{bad}");
        }
        assert_eq!(hub.session_count().unwrap(), 1);
    }

    #[test]
    fn run_spec_runs_a_whole_cell_without_a_session() {
        let hub = hub();
        let reply = handle_line(
            &hub,
            r#"{"cmd":"run_spec","spec":{
                "dataset":{"id":"youtube","scale":"tiny","seed":7},
                "session":{"seed":1,"sampler":"US"},
                "schedule":{"kind":"fixed_batch","k":4},
                "budget":8}}"#,
        );
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true), "{reply}");
        assert_eq!(reply.get("done").unwrap().as_bool(), Some(true));
        assert_eq!(reply.get("iterations").unwrap().as_u64(), Some(8));
        assert_eq!(reply.get("refits").unwrap().as_u64(), Some(2));
        let acc = reply.get("test_accuracy").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&acc));
        // Ephemeral: no session id was allocated, but the cell counters
        // and the run_spec op family moved.
        assert_eq!(hub.session_count().unwrap(), 0);
        assert_eq!(hub.metrics().sweep_cells_total.get(), 1);
        assert_eq!(
            hub.metrics().op(crate::metrics::Op::RunSpec).requests.get(),
            1
        );
    }

    #[test]
    fn run_spec_slices_resume_bitwise_across_the_wire() {
        let spec_json = r#""spec":{
            "dataset":{"id":"youtube","scale":"tiny","seed":7},
            "session":{"seed":3,"sampler":"ADP"},
            "schedule":{"kind":"fixed_batch","k":4},
            "budget":12}"#;
        let hub_a = hub();
        let solo = handle_line(&hub_a, &format!(r#"{{"cmd":"run_spec",{spec_json}}}"#));
        let solo_acc = solo.get("test_accuracy").unwrap().as_f64().unwrap();

        // The same cell in 1-batch slices, checkpoint round-tripping
        // through the hex wire form on a *different* hub each time —
        // exactly a cell bouncing across workers after failures.
        let mut reply = handle_line(
            &hub_a,
            &format!(r#"{{"cmd":"run_spec",{spec_json},"max_batches":1}}"#),
        );
        let mut slices = 1;
        while reply.get("done").unwrap().as_bool() == Some(false) {
            let snapshot = reply.get("snapshot").unwrap().as_str().unwrap().to_string();
            let next_hub = hub();
            reply = handle_line(
                &next_hub,
                &format!(r#"{{"cmd":"run_spec","resume":"{snapshot}","max_batches":1}}"#),
            );
            assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true), "{reply}");
            slices += 1;
        }
        assert_eq!(slices, 3, "12 budget / k=4 = 3 slices");
        let sliced_acc = reply.get("test_accuracy").unwrap().as_f64().unwrap();
        assert_eq!(sliced_acc.to_bits(), solo_acc.to_bits());
        assert_eq!(reply.get("refits").unwrap().as_u64(), Some(3));
        assert_eq!(reply.get("iterations").unwrap().as_u64(), Some(12));
    }

    #[test]
    fn run_spec_rejects_bad_requests_with_typed_errors() {
        let hub = hub();
        for bad in [
            // No spec and no resume.
            r#"{"cmd":"run_spec"}"#,
            // Invalid spec (k = 0 fails validation).
            r#"{"cmd":"run_spec","spec":{
                "dataset":{"id":"youtube","scale":"tiny","seed":7},
                "schedule":{"kind":"fixed_batch","k":0},"budget":4}}"#,
            // Resume payloads that are not hex / not a snapshot.
            r#"{"cmd":"run_spec","resume":"zz","max_batches":1}"#,
            r#"{"cmd":"run_spec","resume":"deadbeef","max_batches":1}"#,
            r#"{"cmd":"run_spec","resume":42,"max_batches":1}"#,
        ] {
            let reply = handle_line(&hub, bad);
            assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false), "{bad}");
            assert!(reply.get("error").is_some(), "{bad}");
        }
        assert_eq!(hub.session_count().unwrap(), 0);
    }

    #[test]
    fn malformed_requests_get_error_replies() {
        let hub = hub();
        for bad in [
            "not json at all",
            r#"{"cmd":"teleport"}"#,
            r#"{"cmd":"step"}"#,
            r#"{"cmd":"step","session":"three"}"#,
            r#"{"cmd":"create","dataset":"NotADataset","scale":"tiny","data_seed":1,"seed":1}"#,
            r#"{"cmd":"create","dataset":"Youtube","scale":"galactic","data_seed":1,"seed":1}"#,
            r#"{"cmd":"create","dataset":"Youtube","scale":"tiny","data_seed":1,"seed":1,"parallel":"yes"}"#,
            r#"{"session":1}"#,
        ] {
            let reply = handle_line(&hub, bad);
            assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false), "{bad}");
            assert!(reply.get("error").is_some(), "{bad}");
        }
        assert_eq!(hub.session_count().unwrap(), 0);
    }

    #[test]
    fn recover_and_durability_ride_the_protocol() {
        let dir = std::env::temp_dir().join(format!(
            "adp-served-recover-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let hub = SessionHub::with_shards_and_spill(2, Some(dir.clone()));
        let reply = handle_line(&hub, &create_line(5));
        let session = reply.get("session").unwrap().as_u64().unwrap();
        // Single steps: each iteration is its own commit point (a batch
        // commits only at its end).
        handle_line(
            &hub,
            &format!(r#"{{"cmd":"run","session":{session},"iterations":4}}"#),
        );

        // A journalled session's `open` reply reports durability.
        let open = handle_line(&hub, &format!(r#"{{"cmd":"open","session":{session}}}"#));
        assert_eq!(open.get("durable_iteration").unwrap().as_u64(), Some(4));
        assert_eq!(open.get("checkpoint_iteration").unwrap().as_u64(), Some(0));
        assert!(open.get("live_segments").unwrap().as_u64().unwrap() >= 1);

        // Recover iteration 2 as a new session and check it reports it.
        let rec = handle_line(
            &hub,
            &format!(r#"{{"cmd":"recover","session":{session},"iteration":2}}"#),
        );
        assert_eq!(rec.get("ok").unwrap().as_bool(), Some(true), "{rec}");
        assert_eq!(rec.get("iteration").unwrap().as_u64(), Some(2));
        let recovered = rec.get("session").unwrap().as_u64().unwrap();
        assert_ne!(recovered, session);
        let open = handle_line(&hub, &format!(r#"{{"cmd":"open","session":{recovered}}}"#));
        assert_eq!(open.get("iteration").unwrap().as_u64(), Some(2));

        // A non-commit target is a typed error, not a panic.
        let bad = handle_line(
            &hub,
            &format!(r#"{{"cmd":"recover","session":{session},"iteration":99}}"#),
        );
        assert_eq!(bad.get("ok").unwrap().as_bool(), Some(false));

        drop(hub);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn metrics_and_health_ride_the_protocol() {
        let hub = hub();
        let reply = handle_line(&hub, &create_line(3));
        let session = reply.get("session").unwrap().as_u64().unwrap();
        handle_line(&hub, &format!(r#"{{"cmd":"step","session":{session}}}"#));

        let metrics = handle_line(&hub, r#"{"cmd":"metrics"}"#);
        assert_eq!(metrics.get("ok").unwrap().as_bool(), Some(true));
        let text = metrics.get("text").unwrap().as_str().unwrap();
        assert!(text.contains("adp_requests_total{op=\"open\"} 1"), "{text}");
        assert!(text.contains("adp_requests_total{op=\"step\"} 1"), "{text}");
        assert!(text.contains("adp_sessions_resident 1"), "{text}");

        let health = handle_line(&hub, r#"{"cmd":"health"}"#);
        assert_eq!(health.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(health.get("healthy").unwrap().as_bool(), Some(true));
        assert_eq!(health.get("resident").unwrap().as_u64(), Some(1));
        assert_eq!(health.get("cold").unwrap().as_u64(), Some(0));
        assert_eq!(
            health.get("shards").unwrap().as_array().unwrap().len(),
            hub.n_shards()
        );
    }

    #[test]
    fn http_shim_serves_metrics_and_health_to_curl() {
        use std::io::Read;
        let server = Server::bind("127.0.0.1:0", Arc::new(hub())).unwrap();
        let addr = server.addr();
        let fetch = |request: &str| {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(request.as_bytes()).unwrap();
            let mut response = String::new();
            conn.read_to_string(&mut response).unwrap();
            response
        };
        let metrics = fetch("GET /metrics HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(metrics.contains("Content-Length:"), "{metrics}");
        assert!(metrics.contains("# TYPE adp_requests_total counter"));
        let health = fetch("GET /health HTTP/1.1\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.contains("\"healthy\":true"), "{health}");
        let head = fetch("HEAD /metrics HTTP/1.1\r\n\r\n");
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(!head.contains("adp_requests_total{"), "HEAD has no body");
        let missing = fetch("GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        // The shim did not disturb the protocol: a JSON client still works.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"{\"cmd\":\"health\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(conn).read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_disconnected_with_a_typed_reply() {
        use std::io::Read;
        let server = Server::bind_with_timeout(
            "127.0.0.1:0",
            Arc::new(hub()),
            Some(Duration::from_millis(150)),
        )
        .unwrap();
        // A connection that sends nothing: after the timeout it must get
        // the final error line and EOF — not hold its thread forever.
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.contains("idle timeout"), "{response:?}");
        // An active client on the same server is untouched mid-exchange.
        let mut active = TcpStream::connect(server.addr()).unwrap();
        active.write_all(b"{\"cmd\":\"health\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(active.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
        server.shutdown();
    }

    #[test]
    fn snapshot_without_spill_dir_reports_the_error() {
        let hub = hub();
        let reply = handle_line(&hub, &create_line(1));
        let session = reply.get("session").unwrap().as_u64().unwrap();
        let snap = handle_line(
            &hub,
            &format!(r#"{{"cmd":"snapshot","session":{session}}}"#),
        );
        assert_eq!(snap.get("ok").unwrap().as_bool(), Some(false));
        assert!(snap
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("spill"));
    }
}
