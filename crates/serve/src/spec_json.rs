//! JSON form of a [`ScenarioSpec`] — the serving protocol's `create_spec`
//! payload and the human-writable twin of the `adp-wire` byte encoding.
//!
//! Reading is *defaulting*: the dataset (`id`, `scale`, `seed`) is
//! required, everything else falls back to [`ScenarioSpec::new`]'s paper
//! defaults for the dataset's modality, so a minimal spec is just
//!
//! ```json
//! {"dataset": {"id": "Youtube", "scale": "tiny", "seed": 7}}
//! ```
//!
//! and a full one names the session knobs and the budget schedule:
//!
//! ```json
//! {"dataset":  {"id": "Youtube", "scale": "tiny", "seed": 7},
//!  "session":  {"seed": 5, "sampler": "US", "label_model": "DawidSkene",
//!               "alpha": 0.4, "labelpick": true, "confusion": true,
//!               "noise_rate": 0.0, "parallel": false,
//!               "candidates": "ann:8,4",
//!               "oracle": "noisy:0.85@escalate"},
//!  "schedule": {"kind": "fixed_batch", "k": 16},
//!  "budget":   64,
//!  "drift":    "label-shift:32,0.8"}
//! ```
//!
//! Schedule kinds: `"fixed_step"`, `"fixed_batch"` (`k`), `"doubling"`
//! (`cap`), `"phased"` (`segments: [{"k": …, "batches": …}, …]`). Names
//! parse through the same `FromStr` impls the CLIs use
//! ([`SamplerChoice`]/[`LabelModelKind`]/`DatasetId`/`Scale`/
//! [`CandidateStrategy`]/[`OracleKind`]/[`DriftSpec`]), so the
//! valid-option lists in error messages stay in one place (`"candidates"`
//! is `"exact"`, `"ann"`, or `"ann:NPROBE[,REFRESH]"`; `"oracle"` is
//! `"simulated"` or `"noisy:ACC[>BIAS][@POLICY][!CHEAP/EXPENSIVE]"`;
//! `"drift"` is `"none"`, `"label-shift:AT,PRIOR"`, `"covariate:AT,ROT"`
//! or `"arriving:PER"`).
//!
//! [`SamplerChoice`]: activedp::SamplerChoice
//! [`LabelModelKind`]: adp_labelmodel::LabelModelKind
//! [`CandidateStrategy`]: activedp::CandidateStrategy
//! [`OracleKind`]: activedp::OracleKind
//! [`DriftSpec`]: adp_data::DriftSpec

use crate::json::Json;
use activedp::{BudgetSchedule, LabelPickConfig, LogRegConfig, PhaseSegment, ScenarioSpec};
use adp_data::{DatasetId, DatasetSpec, Scale};

fn logreg_to_json(c: &LogRegConfig) -> Json {
    Json::obj([
        ("l2", Json::Num(c.l2)),
        ("max_iters", Json::int(c.max_iters as u64)),
        ("tol", Json::Num(c.tol)),
        ("parallel", Json::Bool(c.parallel)),
    ])
}

fn labelpick_to_json(c: &LabelPickConfig) -> Json {
    Json::obj([
        ("rho", Json::Num(c.rho)),
        ("blanket_tol", Json::Num(c.blanket_tol)),
        ("blanket_rel", Json::Num(c.blanket_rel)),
        ("cap", Json::int(c.cap as u64)),
        ("min_queries", Json::int(c.min_queries as u64)),
        ("parallel", Json::Bool(c.parallel)),
    ])
}

/// Renders a spec as protocol JSON — the exact shape
/// [`scenario_from_json`] reads back (`scenario_from_json(scenario_to_json
/// (s)) == s` for every valid spec).
pub fn scenario_to_json(spec: &ScenarioSpec) -> Json {
    let schedule = match &spec.schedule {
        BudgetSchedule::FixedStep => Json::obj([("kind", Json::Str("fixed_step".into()))]),
        BudgetSchedule::FixedBatch { k } => Json::obj([
            ("kind", Json::Str("fixed_batch".into())),
            ("k", Json::int(*k as u64)),
        ]),
        BudgetSchedule::Doubling { cap } => Json::obj([
            ("kind", Json::Str("doubling".into())),
            ("cap", Json::int(*cap as u64)),
        ]),
        BudgetSchedule::Phased { segments } => Json::obj([
            ("kind", Json::Str("phased".into())),
            (
                "segments",
                Json::Arr(
                    segments
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("k", Json::int(s.k as u64)),
                                ("batches", Json::int(s.batches as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    };
    Json::obj([
        (
            "dataset",
            Json::obj([
                ("id", Json::Str(spec.dataset.id.to_string())),
                ("scale", Json::Str(spec.dataset.scale.to_string())),
                ("seed", Json::int(spec.dataset.seed)),
            ]),
        ),
        (
            "session",
            Json::obj([
                ("seed", Json::int(spec.session.seed)),
                ("sampler", Json::Str(spec.session.sampler.to_string())),
                (
                    "label_model",
                    Json::Str(spec.session.label_model.to_string()),
                ),
                ("alpha", Json::Num(spec.session.alpha)),
                ("acc_threshold", Json::Num(spec.session.acc_threshold)),
                ("candidates", Json::Str(spec.session.candidates.to_string())),
                ("oracle", Json::Str(spec.session.oracle.to_string())),
                ("labelpick", Json::Bool(spec.session.use_labelpick)),
                ("confusion", Json::Bool(spec.session.use_confusion)),
                ("noise_rate", Json::Num(spec.session.noise_rate)),
                ("parallel", Json::Bool(spec.session.parallel)),
                (
                    "labelpick_config",
                    labelpick_to_json(&spec.session.labelpick),
                ),
                ("al_logreg", logreg_to_json(&spec.session.al_logreg)),
                (
                    "downstream_logreg",
                    logreg_to_json(&spec.session.downstream_logreg),
                ),
            ]),
        ),
        ("schedule", schedule),
        ("budget", Json::int(spec.budget as u64)),
        ("drift", Json::Str(spec.drift.to_string())),
    ])
}

fn str_field<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what} needs a string \"{key}\""))
}

fn usize_field(obj: &Json, key: &str, what: &str) -> Result<usize, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .map(|v| v as usize)
        .ok_or_else(|| format!("{what} needs a non-negative integer \"{key}\""))
}

/// Overwrites `target` with `obj[key]` when present; absent keys keep the
/// default already in `target`.
fn opt_f64(obj: &Json, key: &str, what: &str, target: &mut f64) -> Result<(), String> {
    if let Some(v) = obj.get(key) {
        *target = v
            .as_f64()
            .ok_or_else(|| format!("{what}.{key} must be a number"))?;
    }
    Ok(())
}

fn opt_usize(obj: &Json, key: &str, what: &str, target: &mut usize) -> Result<(), String> {
    if let Some(v) = obj.get(key) {
        *target = v
            .as_u64()
            .ok_or_else(|| format!("{what}.{key} must be a non-negative integer"))?
            as usize;
    }
    Ok(())
}

fn opt_bool(obj: &Json, key: &str, what: &str, target: &mut bool) -> Result<(), String> {
    if let Some(v) = obj.get(key) {
        *target = v
            .as_bool()
            .ok_or_else(|| format!("{what}.{key} must be a boolean"))?;
    }
    Ok(())
}

fn logreg_from_json(v: &Json, what: &str, target: &mut LogRegConfig) -> Result<(), String> {
    opt_f64(v, "l2", what, &mut target.l2)?;
    opt_usize(v, "max_iters", what, &mut target.max_iters)?;
    opt_f64(v, "tol", what, &mut target.tol)?;
    opt_bool(v, "parallel", what, &mut target.parallel)
}

fn labelpick_from_json(v: &Json, target: &mut LabelPickConfig) -> Result<(), String> {
    let what = "\"session.labelpick_config\"";
    opt_f64(v, "rho", what, &mut target.rho)?;
    opt_f64(v, "blanket_tol", what, &mut target.blanket_tol)?;
    opt_f64(v, "blanket_rel", what, &mut target.blanket_rel)?;
    opt_usize(v, "cap", what, &mut target.cap)?;
    opt_usize(v, "min_queries", what, &mut target.min_queries)?;
    opt_bool(v, "parallel", what, &mut target.parallel)
}

/// Parses the JSON form back into a [`ScenarioSpec`], applying paper
/// defaults for every absent session/schedule/budget field (the returned
/// spec is *not* yet validated — `ScenarioSpec::validate` runs where the
/// spec is used, so error paths stay uniform with the byte codec).
pub fn scenario_from_json(v: &Json) -> Result<ScenarioSpec, String> {
    let dataset = v.get("dataset").ok_or("missing \"dataset\"")?;
    let id: DatasetId = str_field(dataset, "id", "\"dataset\"")?
        .parse()
        .map_err(|e| format!("{e}"))?;
    let scale: Scale = str_field(dataset, "scale", "\"dataset\"")?
        .parse()
        .map_err(|e| format!("{e}"))?;
    let seed = dataset
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or("\"dataset\" needs a non-negative integer \"seed\"")?;
    let mut spec = ScenarioSpec::new(DatasetSpec { id, scale, seed });

    if let Some(session) = v.get("session") {
        if let Some(seed) = session.get("seed") {
            spec.session.seed = seed
                .as_u64()
                .ok_or("\"session.seed\" must be a non-negative integer")?;
        }
        if let Some(sampler) = session.get("sampler") {
            spec.session.sampler = sampler
                .as_str()
                .ok_or("\"session.sampler\" must be a string")?
                .parse()
                .map_err(|e| format!("{e}"))?;
        }
        if let Some(kind) = session.get("label_model") {
            spec.session.label_model = kind
                .as_str()
                .ok_or("\"session.label_model\" must be a string")?
                .parse()
                .map_err(|e| format!("{e}"))?;
        }
        opt_f64(session, "alpha", "\"session\"", &mut spec.session.alpha)?;
        opt_f64(
            session,
            "acc_threshold",
            "\"session\"",
            &mut spec.session.acc_threshold,
        )?;
        if let Some(candidates) = session.get("candidates") {
            spec.session.candidates = candidates
                .as_str()
                .ok_or("\"session.candidates\" must be a string")?
                .parse()
                .map_err(|e| format!("{e}"))?;
        }
        if let Some(oracle) = session.get("oracle") {
            spec.session.oracle = oracle
                .as_str()
                .ok_or("\"session.oracle\" must be a string")?
                .parse()
                .map_err(|e| format!("{e}"))?;
        }
        opt_bool(
            session,
            "labelpick",
            "\"session\"",
            &mut spec.session.use_labelpick,
        )?;
        opt_bool(
            session,
            "confusion",
            "\"session\"",
            &mut spec.session.use_confusion,
        )?;
        opt_f64(
            session,
            "noise_rate",
            "\"session\"",
            &mut spec.session.noise_rate,
        )?;
        opt_bool(
            session,
            "parallel",
            "\"session\"",
            &mut spec.session.parallel,
        )?;
        if let Some(labelpick) = session.get("labelpick_config") {
            labelpick_from_json(labelpick, &mut spec.session.labelpick)?;
        }
        if let Some(logreg) = session.get("al_logreg") {
            logreg_from_json(logreg, "\"session.al_logreg\"", &mut spec.session.al_logreg)?;
        }
        if let Some(logreg) = session.get("downstream_logreg") {
            logreg_from_json(
                logreg,
                "\"session.downstream_logreg\"",
                &mut spec.session.downstream_logreg,
            )?;
        }
    }

    if let Some(schedule) = v.get("schedule") {
        spec.schedule = match str_field(schedule, "kind", "\"schedule\"")? {
            "fixed_step" => BudgetSchedule::FixedStep,
            "fixed_batch" => BudgetSchedule::FixedBatch {
                k: usize_field(schedule, "k", "\"schedule\"")?,
            },
            "doubling" => BudgetSchedule::Doubling {
                cap: usize_field(schedule, "cap", "\"schedule\"")?,
            },
            "phased" => {
                let segments = schedule
                    .get("segments")
                    .and_then(Json::as_array)
                    .ok_or("\"schedule\" needs an array \"segments\"")?
                    .iter()
                    .map(|seg| {
                        Ok(PhaseSegment {
                            k: usize_field(seg, "k", "a phased segment")?,
                            batches: usize_field(seg, "batches", "a phased segment")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                BudgetSchedule::Phased { segments }
            }
            other => {
                return Err(format!(
                    "unknown schedule kind {other:?}; expected one of \
                     fixed_step, fixed_batch, doubling, phased"
                ))
            }
        };
    }

    if let Some(budget) = v.get("budget") {
        spec.budget = budget
            .as_u64()
            .ok_or("\"budget\" must be a non-negative integer")? as usize;
    }
    if let Some(drift) = v.get("drift") {
        spec.drift = drift
            .as_str()
            .ok_or("\"drift\" must be a string")?
            .parse()
            .map_err(|e| format!("{e}"))?;
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use activedp::SamplerChoice;
    use adp_labelmodel::LabelModelKind;

    fn dataset() -> DatasetSpec {
        DatasetSpec {
            id: DatasetId::Youtube,
            scale: Scale::Tiny,
            seed: 7,
        }
    }

    #[test]
    fn full_spec_roundtrips_through_json() {
        let mut spec = ScenarioSpec::new(dataset());
        spec.session.seed = 5;
        spec.session.sampler = SamplerChoice::Qbc;
        spec.session.label_model = LabelModelKind::DawidSkene;
        spec.session.parallel = false;
        // Every config field rides the JSON, the nested ones included —
        // the served session must be *exactly* the spec the client holds.
        spec.session.acc_threshold = 0.8;
        spec.session.candidates = activedp::CandidateStrategy::Ann {
            nprobe: 6,
            refresh_every: 2,
        };
        spec.session.labelpick.rho = 0.25;
        spec.session.labelpick.cap = 17;
        spec.session.al_logreg.l2 = 0.125;
        spec.session.al_logreg.max_iters = 93;
        spec.session.downstream_logreg.tol = 1e-7;
        spec.session.downstream_logreg.parallel = false;
        spec.session.oracle = activedp::OracleKind::Noisy {
            confusion: activedp::ConfusionSpec::Biased {
                accuracy: 0.8,
                bias: 1,
            },
            latency: activedp::LatencyModel {
                cheap_cost: 0.25,
                expensive_cost: 16.0,
            },
            policy: activedp::RoutePolicy::UncertaintyThreshold { tau: 0.35 },
        };
        spec.drift = adp_data::DriftSpec::LabelShift { at: 9, prior: 0.75 };
        spec.schedule = BudgetSchedule::Phased {
            segments: vec![
                PhaseSegment { k: 1, batches: 4 },
                PhaseSegment { k: 8, batches: 2 },
            ],
        };
        spec.budget = 40;
        let json = scenario_to_json(&spec);
        // Through the actual wire text, not just the value tree.
        let parsed = Json::parse(&json.to_string()).unwrap();
        assert_eq!(scenario_from_json(&parsed).unwrap(), spec);
    }

    #[test]
    fn minimal_spec_gets_paper_defaults() {
        let v = Json::parse(r#"{"dataset":{"id":"census","scale":"tiny","seed":3}}"#).unwrap();
        let spec = scenario_from_json(&v).unwrap();
        assert_eq!(spec, ScenarioSpec::new(spec.dataset));
        assert_eq!(spec.dataset.id, DatasetId::Census);
        assert_eq!(spec.session.alpha, 0.99); // tabular default
        assert_eq!(spec.schedule, BudgetSchedule::FixedStep);
    }

    #[test]
    fn every_schedule_kind_roundtrips() {
        for schedule in [
            BudgetSchedule::FixedStep,
            BudgetSchedule::FixedBatch { k: 16 },
            BudgetSchedule::Doubling { cap: 32 },
            BudgetSchedule::Phased {
                segments: vec![PhaseSegment { k: 2, batches: 3 }],
            },
        ] {
            let spec = ScenarioSpec {
                schedule: schedule.clone(),
                ..ScenarioSpec::new(dataset())
            };
            let back = scenario_from_json(&scenario_to_json(&spec)).unwrap();
            assert_eq!(back.schedule, schedule);
        }
    }

    #[test]
    fn bad_names_report_the_valid_options() {
        let bad_sampler = Json::parse(
            r#"{"dataset":{"id":"youtube","scale":"tiny","seed":1},
                "session":{"sampler":"oracle"}}"#,
        )
        .unwrap();
        let err = scenario_from_json(&bad_sampler).unwrap_err();
        assert!(err.contains("ADP"), "{err}");

        let bad_model = Json::parse(
            r#"{"dataset":{"id":"youtube","scale":"tiny","seed":1},
                "session":{"label_model":"snorkel"}}"#,
        )
        .unwrap();
        let err = scenario_from_json(&bad_model).unwrap_err();
        assert!(err.contains("Triplet"), "{err}");

        let bad_dataset =
            Json::parse(r#"{"dataset":{"id":"mnist","scale":"tiny","seed":1}}"#).unwrap();
        let err = scenario_from_json(&bad_dataset).unwrap_err();
        assert!(err.contains("Youtube"), "{err}");

        let bad_kind = Json::parse(
            r#"{"dataset":{"id":"youtube","scale":"tiny","seed":1},
                "schedule":{"kind":"warp"}}"#,
        )
        .unwrap();
        let err = scenario_from_json(&bad_kind).unwrap_err();
        assert!(err.contains("fixed_batch"), "{err}");

        let bad_candidates = Json::parse(
            r#"{"dataset":{"id":"youtube","scale":"tiny","seed":1},
                "session":{"candidates":"hnsw"}}"#,
        )
        .unwrap();
        let err = scenario_from_json(&bad_candidates).unwrap_err();
        assert!(err.contains("ann:NPROBE"), "{err}");

        let bad_oracle = Json::parse(
            r#"{"dataset":{"id":"youtube","scale":"tiny","seed":1},
                "session":{"oracle":"psychic"}}"#,
        )
        .unwrap();
        let err = scenario_from_json(&bad_oracle).unwrap_err();
        assert!(err.contains("noisy:ACC"), "{err}");

        let bad_drift = Json::parse(
            r#"{"dataset":{"id":"youtube","scale":"tiny","seed":1},
                "drift":"tectonic"}"#,
        )
        .unwrap();
        let err = scenario_from_json(&bad_drift).unwrap_err();
        assert!(err.contains("label-shift:AT"), "{err}");
    }

    #[test]
    fn every_oracle_and_drift_shape_roundtrips() {
        for (oracle, drift) in [
            ("simulated", "none"),
            ("noisy:0.9", "label-shift:8,0.7"),
            ("noisy:0.85>1@always-cheap", "covariate:4,0.5"),
            ("noisy:0.8@uncertainty:0.4!0.5/20", "arriving:3"),
            ("noisy:0.95@escalate", "none"),
        ] {
            let text = format!(
                r#"{{"dataset":{{"id":"census","scale":"tiny","seed":1}},
                    "session":{{"oracle":"{oracle}"}},"drift":"{drift}"}}"#
            );
            let spec = scenario_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(spec.session.oracle, oracle.parse().unwrap());
            assert_eq!(spec.drift, drift.parse().unwrap());
            let back =
                scenario_from_json(&Json::parse(&scenario_to_json(&spec).to_string()).unwrap())
                    .unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn missing_or_mistyped_fields_are_errors() {
        for bad in [
            r#"{}"#,
            r#"{"dataset":{"scale":"tiny","seed":1}}"#,
            r#"{"dataset":{"id":"youtube","seed":1}}"#,
            r#"{"dataset":{"id":"youtube","scale":"tiny"}}"#,
            r#"{"dataset":{"id":"youtube","scale":"tiny","seed":1},"budget":-3}"#,
            r#"{"dataset":{"id":"youtube","scale":"tiny","seed":1},"schedule":{"kind":"fixed_batch"}}"#,
            r#"{"dataset":{"id":"youtube","scale":"tiny","seed":1},"session":{"parallel":"yes"}}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(scenario_from_json(&v).is_err(), "{bad}");
        }
    }
}
