//! Concurrent session serving over the owned ActiveDP engine.
//!
//! The [`SessionHub`] is the serving layer the ROADMAP's north star asks
//! for: many labelling sessions live behind one handle, created, stepped,
//! evaluated and dropped by [`SessionId`]. Sessions are sharded across
//! worker threads — each worker owns the engines assigned to it, so there
//! is no lock around an engine and no way for two callers to interleave
//! within one session's trajectory. Determinism carries over from the
//! engine: a session stepped through the hub produces the same trajectory,
//! bit for bit, as the same engine stepped solo, no matter how many other
//! sessions run next to it (pinned by this crate's tests).
//!
//! Everything is std: `mpsc` channels in, `mpsc` reply channels out. The
//! hub is `Send + Sync`, so one hub can serve calls from any number of
//! client threads.
//!
//! Around the hub this crate adds the **durable serving** stack:
//!
//! * [`persist`] — session spill files (`SessionHub::save_all` /
//!   `load_all`): atomic writes, versioned headers, corrupt-file
//!   rejection, ids preserved across restarts;
//! * [`journal`] — per-session write-ahead logging over [`adp_wal`]:
//!   every step is journalled by default when a spill directory is
//!   configured, `load_all` replays journal tails past the last snapshot,
//!   and [`SessionHub::recover`](hub::SessionHub::recover) rebuilds any
//!   journalled commit point as a new session;
//! * [`server`] — the `adp-served` JSON-lines TCP front end
//!   (thread-per-connection over a shared hub) and its protocol;
//! * [`client`] — a tiny blocking client for that protocol;
//! * [`json`] — the dependency-free JSON value the protocol rides on.
//!
//! A true async runtime front end stays on the ROADMAP until crates.io
//! access lands; the protocol (newline-framed request/response) is
//! deliberately trivial to re-host on one.

pub mod client;
pub mod hub;
pub mod journal;
pub mod json;
pub mod persist;
pub mod server;
pub mod spec_json;

pub use client::{Client, ClientError, DurabilityReply, EvalReply, OpenReply, StepReply};
pub use hub::{ServeError, SessionHub, SessionId, SessionStatus};
pub use journal::DurabilityStatus;
pub use json::Json;
pub use persist::{SpillRecord, SPILL_MAGIC, SPILL_VERSION};
pub use server::Server;
pub use spec_json::{scenario_from_json, scenario_to_json};
