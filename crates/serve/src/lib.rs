//! Concurrent session serving over the owned ActiveDP engine.
//!
//! The [`SessionHub`] is the serving layer the ROADMAP's north star asks
//! for: many labelling sessions live behind one handle, created, stepped,
//! evaluated and dropped by [`SessionId`]. Sessions are sharded across
//! worker threads — each worker owns the engines assigned to it, so there
//! is no lock around an engine and no way for two callers to interleave
//! within one session's trajectory. Determinism carries over from the
//! engine: a session stepped through the hub produces the same trajectory,
//! bit for bit, as the same engine stepped solo, no matter how many other
//! sessions run next to it (pinned by this crate's tests).
//!
//! Everything is std: `mpsc` channels in, `mpsc` reply channels out. The
//! hub is `Send + Sync`, so one hub can serve calls from any number of
//! client threads.
//!
//! Around the hub this crate adds the **durable serving** stack:
//!
//! * [`persist`] — session spill files (`SessionHub::save_all` /
//!   `load_all`): atomic writes, versioned headers, corrupt-file
//!   rejection, ids preserved across restarts;
//! * [`journal`] — per-session write-ahead logging over [`adp_wal`]:
//!   every step is journalled by default when a spill directory is
//!   configured, `load_all` replays journal tails past the last snapshot,
//!   and [`SessionHub::recover`](hub::SessionHub::recover) rebuilds any
//!   journalled commit point as a new session;
//! * [`server`] — the `adp-served` JSON-lines TCP front end
//!   (thread-per-connection over a shared hub) and its protocol;
//! * [`client`] — a tiny blocking client for that protocol;
//! * [`json`] — the dependency-free JSON value the protocol rides on;
//! * [`metrics`] — the hub's hand-rolled observability surface: atomic
//!   counters and fixed-bucket latency histograms per operation, rendered
//!   in the Prometheus text format for the server's `metrics` command.
//!
//! The hub also tiers sessions hot/cold under a memory budget
//! ([`SessionHub::with_memory_budget`](hub::SessionHub::with_memory_budget)
//! / `ADP_MAX_RESIDENT`): least-recently-touched sessions are evicted to
//! their spill files and resume transparently on the next touch, with
//! bitwise-identical trajectories. Without a budget (the default) nothing
//! is ever evicted.
//!
//! A true async runtime front end stays on the ROADMAP until crates.io
//! access lands; the protocol (newline-framed request/response) is
//! deliberately trivial to re-host on one.

pub mod client;
pub mod hex;
pub mod hub;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod persist;
pub mod server;
pub mod spec_json;

pub use client::{
    CellProgressReply, CellRowReply, Client, ClientError, DurabilityReply, EvalReply, HealthReply,
    OpenReply, ShardHealthReply, StepReply,
};
pub use hub::{
    CellProgress, CellResult, CellStart, HubHealth, ServeError, SessionHub, SessionId,
    SessionStatus, ShardHealth,
};
pub use journal::DurabilityStatus;
pub use json::Json;
pub use metrics::{HubMetrics, Op};
pub use persist::{SpillRecord, SPILL_MAGIC, SPILL_VERSION};
pub use server::Server;
pub use spec_json::{scenario_from_json, scenario_to_json};
