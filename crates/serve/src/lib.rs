//! Concurrent session serving over the owned ActiveDP engine.
//!
//! The [`SessionHub`] is the serving layer the ROADMAP's north star asks
//! for: many labelling sessions live behind one handle, created, stepped,
//! evaluated and dropped by [`SessionId`]. Sessions are sharded across
//! worker threads — each worker owns the engines assigned to it, so there
//! is no lock around an engine and no way for two callers to interleave
//! within one session's trajectory. Determinism carries over from the
//! engine: a session stepped through the hub produces the same trajectory,
//! bit for bit, as the same engine stepped solo, no matter how many other
//! sessions run next to it (pinned by this crate's tests).
//!
//! Everything is std: `mpsc` channels in, `mpsc` reply channels out. The
//! hub is `Send + Sync`, so one hub can serve calls from any number of
//! client threads; an async front end can wrap the blocking calls in its
//! own executor later (see ROADMAP).

pub mod hub;

pub use hub::{ServeError, SessionHub, SessionId};
