//! A minimal JSON value type with parser and writer.
//!
//! The `adp-served` front end speaks JSON-lines, and the offline-vendor
//! constraint rules out serde, so this module implements exactly the JSON
//! the protocol needs: objects, arrays, strings (with escapes), numbers,
//! booleans and null. Numbers are `f64` with one carve-out — integers up
//! to 2⁵³ write without a fractional part and read back exactly, which
//! covers session ids, iteration counts and seeds. Object key order is
//! preserved (no maps), so encoding is deterministic.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, key order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key (first match), `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Convenience: an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience: an integer number.
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Parses one JSON value, requiring it to span the whole input (aside
    /// from surrounding whitespace) — exactly one value per protocol line.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= (1u64 << 53) as f64 {
                    write!(f, "{}", *n as i64)
                } else if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; the protocol encodes them null.
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A JSON parse error with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Nesting cap for untrusted input: the parser recurses per level, and the
/// protocol never nests more than ~3 deep, so 64 is generous headroom while
/// keeping a hostile `[[[[…` line a typed error instead of a stack
/// overflow that would abort the whole server process.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.depth += 1;
        let value = self.value_inner();
        self.depth -= 1;
        value
    }

    fn value_inner(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // Surrogate pair: require the low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            first
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences from the input.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid utf-8")),
                    };
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.to_string();
        assert_eq!(&Json::parse(&text).expect("reparses"), v, "{text}");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&Json::Null);
        roundtrip(&Json::Bool(true));
        roundtrip(&Json::Bool(false));
        roundtrip(&Json::Num(0.0));
        roundtrip(&Json::Num(-7.0));
        roundtrip(&Json::Num(0.6));
        roundtrip(&Json::Num(1e-12));
        roundtrip(&Json::int(u64::MAX >> 12));
        roundtrip(&Json::Str("hello".into()));
    }

    #[test]
    fn integers_write_without_fraction_and_read_back_exactly() {
        let id = 9_007_199_254_740_992u64 >> 1; // 2^52
        assert_eq!(Json::int(id).to_string(), id.to_string());
        assert_eq!(Json::parse(&id.to_string()).unwrap().as_u64(), Some(id));
        // Floats keep their fraction.
        assert_eq!(Json::Num(0.45).to_string(), "0.45");
    }

    #[test]
    fn strings_escape_and_unescape() {
        roundtrip(&Json::Str("with \"quotes\" and \\ and \n tab\t".into()));
        roundtrip(&Json::Str("unicode: λ → ∞ 🦀".into()));
        roundtrip(&Json::Str("control \u{0001}".into()));
        assert_eq!(
            Json::parse(r#""\u00e9\ud83e\udd80""#).unwrap(),
            Json::Str("é🦀".into())
        );
    }

    #[test]
    fn nested_structures_roundtrip() {
        roundtrip(&Json::obj([
            ("cmd", Json::Str("step_batch".into())),
            ("session", Json::int(3)),
            (
                "outcomes",
                Json::Arr(vec![
                    Json::obj([("query", Json::int(88)), ("lf", Json::Null)]),
                    Json::obj([("query", Json::Num(101.0)), ("ok", Json::Bool(true))]),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("b").unwrap().is_null());
    }

    #[test]
    fn accessors_type_check() {
        let v = Json::parse(r#"{"n":3,"f":0.5,"s":"x","b":true}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("n"), None);
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "tru",
            "nul",
            "\"unterminated",
            "{\"a\" 1}",
            "01x",
            "\"bad \\q escape\"",
            "\"\\u12\"",
            "1 2",
            "{\"a\":1}garbage",
            "\"\\ud800 unpaired\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn hostile_nesting_is_a_typed_error_not_a_stack_overflow() {
        let deep_arr = "[".repeat(100_000);
        assert!(Json::parse(&deep_arr).is_err());
        let deep_obj = "{\"a\":".repeat(100_000);
        assert!(Json::parse(&deep_obj).is_err());
        // The protocol's real nesting depth stays comfortably under the cap.
        let nested = format!("{}1{}", "[".repeat(10), "]".repeat(10));
        assert!(Json::parse(&nested).is_ok());
    }

    #[test]
    fn non_finite_numbers_serialise_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
