//! A tiny blocking client for the `adp-served` JSON-lines protocol.
//!
//! One TCP connection, one in-flight request at a time: each call writes a
//! request line and blocks on the response line. This is deliberately the
//! simplest possible consumer of the protocol — the integration tests
//! drive full trajectories and the kill/reload/resume cycle through it,
//! and it doubles as the reference implementation for clients in other
//! languages.

use crate::json::Json;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or dropped.
    Io(std::io::Error),
    /// The server's reply was not valid protocol JSON.
    Protocol(String),
    /// The server answered `"ok": false` with this error text.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Protocol(e) => write!(f, "bad reply: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One step's outcome as reported over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepReply {
    /// 1-based iteration number.
    pub iteration: u64,
    /// The query instance, or `None` when the pool was exhausted.
    pub query: Option<u64>,
    /// Debug rendering of the returned LF's key, if any.
    pub lf: Option<String>,
    /// Total LFs collected so far.
    pub n_lfs: u64,
    /// LFs currently selected.
    pub n_selected: u64,
}

/// A downstream evaluation as reported over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReply {
    /// Downstream test-set accuracy.
    pub test_accuracy: f64,
    /// Aggregated-label accuracy over covered instances, when defined.
    pub label_accuracy: Option<f64>,
    /// Fraction of training instances that received a label.
    pub label_coverage: f64,
    /// Tuned confidence threshold (None when ConFusion is ablated).
    pub threshold: Option<f64>,
    /// LFs selected at evaluation time.
    pub n_selected: u64,
    /// Whether the downstream model had training data.
    pub downstream_trained: bool,
}

/// A finished sweep cell as reported by `run_spec` (`done: true`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellRowReply {
    /// Loop iterations consumed.
    pub iterations: u64,
    /// Refit batches the iterations span.
    pub refits: u64,
    /// Final downstream test accuracy.
    pub test_accuracy: f64,
    /// The final slice's wall clock, milliseconds.
    pub wall_ms: f64,
    /// Fraction of routed queries the cheap oracle answered (0 for
    /// simulated sessions, and when the server predates routing).
    pub cheap_fraction: f64,
    /// Total routed labelling cost (0 under the same conditions).
    pub routed_cost: f64,
    /// Post-drift accuracy recovery; 0 for drift-free and sliced cells.
    pub recovery: f64,
}

/// One `run_spec` slice's outcome: the finished row, or a checkpoint to
/// resume from (on this worker or any other).
#[derive(Debug, Clone, PartialEq)]
pub enum CellProgressReply {
    /// The cell ran to completion and was evaluated.
    Done(CellRowReply),
    /// The batch cap stopped the slice; resume with
    /// [`Client::resume_spec_batches`].
    Partial {
        /// Iterations consumed so far.
        iteration: u64,
        /// This slice's wall clock, milliseconds.
        wall_ms: f64,
        /// Opaque boundary snapshot bytes (decoded from the wire's hex).
        snapshot: Vec<u8>,
    },
}

/// A journalled session's durability, as reported by `open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityReply {
    /// Iteration of the last spilled snapshot (the journal's checkpoint).
    pub checkpoint_iteration: u64,
    /// Last iteration durable on disk as a commit point — where a crash
    /// right now would recover to.
    pub durable_iteration: u64,
    /// Live write-ahead-log segment files.
    pub live_segments: u64,
}

/// Where a session stands, as reported by `open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenReply {
    /// The session id (echoed).
    pub session: u64,
    /// Completed loop iterations.
    pub iteration: u64,
    /// LFs collected so far.
    pub n_lfs: u64,
    /// LFs currently selected.
    pub n_selected: u64,
    /// Durability, when the session is journalled server-side.
    pub durability: Option<DurabilityReply>,
}

/// One shard's liveness as reported by `health`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealthReply {
    /// Shard index.
    pub shard: u64,
    /// Whether the shard's worker thread is still serving.
    pub alive: bool,
    /// Hot sessions resident on this shard.
    pub resident: u64,
}

/// The hub's health and tiering counters as reported by `health`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReply {
    /// Whether every shard worker is alive.
    pub healthy: bool,
    /// Per-shard liveness.
    pub shards: Vec<ShardHealthReply>,
    /// Hot (in-memory) sessions across all shards.
    pub resident: u64,
    /// Cold (evicted-to-spill) sessions.
    pub cold: u64,
    /// The memory budget, `None` when unbudgeted.
    pub max_resident: Option<u64>,
    /// Sessions evicted to their spill files, ever.
    pub evicted_total: u64,
    /// Cold sessions resumed on touch, ever.
    pub resumed_total: u64,
}

/// A blocking `adp-served` connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // One request line, one reply line: without TCP_NODELAY every
        // call risks a Nagle/delayed-ACK stall.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    fn call(&mut self, request: Json) -> Result<Json, ClientError> {
        writeln!(self.writer, "{request}")?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let reply =
            Json::parse(line.trim_end()).map_err(|e| ClientError::Protocol(e.to_string()))?;
        match reply.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(reply),
            Some(false) => Err(ClientError::Server(
                reply
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
            )),
            None => Err(ClientError::Protocol(format!("reply without ok: {reply}"))),
        }
    }

    fn expect_u64(reply: &Json, key: &str) -> Result<u64, ClientError> {
        reply
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol(format!("missing integer \"{key}\": {reply}")))
    }

    fn expect_f64(reply: &Json, key: &str) -> Result<f64, ClientError> {
        reply
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| ClientError::Protocol(format!("missing number \"{key}\": {reply}")))
    }

    /// A numeric field newer servers emit and older ones omit; absent
    /// means zero rather than a protocol error.
    fn optional_f64(reply: &Json, key: &str) -> f64 {
        reply.get(key).and_then(Json::as_f64).unwrap_or(0.0)
    }

    fn step_reply(value: &Json) -> Result<StepReply, ClientError> {
        Ok(StepReply {
            iteration: Self::expect_u64(value, "iteration")?,
            query: value.get("query").and_then(Json::as_u64),
            lf: value.get("lf").and_then(Json::as_str).map(str::to_string),
            n_lfs: Self::expect_u64(value, "n_lfs")?,
            n_selected: Self::expect_u64(value, "n_selected")?,
        })
    }

    /// Creates a session over a generated dataset and returns its id.
    /// `parallel: None` keeps the server's default execution policy.
    pub fn create(
        &mut self,
        dataset: &str,
        scale: &str,
        data_seed: u64,
        seed: u64,
        parallel: Option<bool>,
    ) -> Result<u64, ClientError> {
        let mut fields = vec![
            ("cmd", Json::Str("create".into())),
            ("dataset", Json::Str(dataset.into())),
            ("scale", Json::Str(scale.into())),
            ("data_seed", Json::int(data_seed)),
            ("seed", Json::int(seed)),
        ];
        if let Some(parallel) = parallel {
            fields.push(("parallel", Json::Bool(parallel)));
        }
        let reply = self.call(Json::obj(fields))?;
        Self::expect_u64(&reply, "session")
    }

    /// Creates the session a [`ScenarioSpec`] describes — the declarative
    /// sibling of [`Client::create`] (the `create_spec` request; the spec
    /// is shipped as its JSON form, see [`crate::spec_json`]).
    ///
    /// [`ScenarioSpec`]: activedp::ScenarioSpec
    pub fn create_spec(&mut self, spec: &activedp::ScenarioSpec) -> Result<u64, ClientError> {
        let reply = self.call(Json::obj([
            ("cmd", Json::Str("create_spec".into())),
            ("spec", crate::spec_json::scenario_to_json(spec)),
        ]))?;
        Self::expect_u64(&reply, "session")
    }

    /// Re-attaches to a live (possibly reloaded) session by id.
    pub fn open(&mut self, session: u64) -> Result<OpenReply, ClientError> {
        let reply = self.call(Json::obj([
            ("cmd", Json::Str("open".into())),
            ("session", Json::int(session)),
        ]))?;
        let durability = if reply.get("durable_iteration").is_some() {
            Some(DurabilityReply {
                checkpoint_iteration: Self::expect_u64(&reply, "checkpoint_iteration")?,
                durable_iteration: Self::expect_u64(&reply, "durable_iteration")?,
                live_segments: Self::expect_u64(&reply, "live_segments")?,
            })
        } else {
            None
        };
        Ok(OpenReply {
            session: Self::expect_u64(&reply, "session")?,
            iteration: Self::expect_u64(&reply, "iteration")?,
            n_lfs: Self::expect_u64(&reply, "n_lfs")?,
            n_selected: Self::expect_u64(&reply, "n_selected")?,
            durability,
        })
    }

    /// One training iteration.
    pub fn step(&mut self, session: u64) -> Result<StepReply, ClientError> {
        let reply = self.call(Json::obj([
            ("cmd", Json::Str("step".into())),
            ("session", Json::int(session)),
        ]))?;
        Self::step_reply(&reply)
    }

    /// Batched stepping: up to `k` queries, one refit.
    pub fn step_batch(&mut self, session: u64, k: u64) -> Result<Vec<StepReply>, ClientError> {
        let reply = self.call(Json::obj([
            ("cmd", Json::Str("step_batch".into())),
            ("session", Json::int(session)),
            ("k", Json::int(k)),
        ]))?;
        reply
            .get("outcomes")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol(format!("missing outcomes: {reply}")))?
            .iter()
            .map(Self::step_reply)
            .collect()
    }

    /// Runs `iterations` single steps server-side.
    pub fn run(&mut self, session: u64, iterations: u64) -> Result<(), ClientError> {
        self.call(Json::obj([
            ("cmd", Json::Str("run".into())),
            ("session", Json::int(session)),
            ("iterations", Json::int(iterations)),
        ]))?;
        Ok(())
    }

    /// Inference-phase evaluation.
    pub fn evaluate(&mut self, session: u64) -> Result<EvalReply, ClientError> {
        let reply = self.call(Json::obj([
            ("cmd", Json::Str("evaluate".into())),
            ("session", Json::int(session)),
        ]))?;
        Ok(EvalReply {
            test_accuracy: Self::expect_f64(&reply, "test_accuracy")?,
            label_accuracy: reply.get("label_accuracy").and_then(Json::as_f64),
            label_coverage: Self::expect_f64(&reply, "label_coverage")?,
            threshold: reply.get("threshold").and_then(Json::as_f64),
            n_selected: Self::expect_u64(&reply, "n_selected")?,
            downstream_trained: reply
                .get("downstream_trained")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }

    /// Spills the session to the server's spill directory; returns the
    /// file path server-side.
    pub fn snapshot(&mut self, session: u64) -> Result<String, ClientError> {
        let reply = self.call(Json::obj([
            ("cmd", Json::Str("snapshot".into())),
            ("session", Json::int(session)),
        ]))?;
        reply
            .get("path")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol(format!("missing path: {reply}")))
    }

    /// Spills every persistable session; returns the ids written.
    pub fn save_all(&mut self) -> Result<Vec<u64>, ClientError> {
        let reply = self.call(Json::obj([("cmd", Json::Str("save_all".into()))]))?;
        reply
            .get("saved")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol(format!("missing saved: {reply}")))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| ClientError::Protocol(format!("bad id in saved: {v}")))
            })
            .collect()
    }

    /// Rebuilds the state `session` had at journalled commit point
    /// `iteration` as a **new** server-side session; returns the new id.
    /// The source session is untouched.
    pub fn recover(&mut self, session: u64, iteration: u64) -> Result<u64, ClientError> {
        let reply = self.call(Json::obj([
            ("cmd", Json::Str("recover".into())),
            ("session", Json::int(session)),
            ("iteration", Json::int(iteration)),
        ]))?;
        Self::expect_u64(&reply, "session")
    }

    fn cell_progress(reply: &Json) -> Result<CellProgressReply, ClientError> {
        match reply.get("done").and_then(Json::as_bool) {
            Some(true) => Ok(CellProgressReply::Done(CellRowReply {
                iterations: Self::expect_u64(reply, "iterations")?,
                refits: Self::expect_u64(reply, "refits")?,
                test_accuracy: Self::expect_f64(reply, "test_accuracy")?,
                wall_ms: Self::expect_f64(reply, "wall_ms")?,
                // Absent on pre-routing servers: default, don't reject.
                cheap_fraction: Self::optional_f64(reply, "cheap_fraction"),
                routed_cost: Self::optional_f64(reply, "routed_cost"),
                recovery: Self::optional_f64(reply, "recovery"),
            })),
            Some(false) => {
                let hex = reply
                    .get("snapshot")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ClientError::Protocol(format!("missing snapshot: {reply}")))?;
                Ok(CellProgressReply::Partial {
                    iteration: Self::expect_u64(reply, "iteration")?,
                    wall_ms: Self::expect_f64(reply, "wall_ms")?,
                    snapshot: crate::hex::decode(hex).map_err(ClientError::Protocol)?,
                })
            }
            None => Err(ClientError::Protocol(format!("missing done: {reply}"))),
        }
    }

    /// Runs one whole sweep cell server-side on an ephemeral engine (the
    /// `run_spec` command with no batch cap) and returns its typed result
    /// row. No session id is allocated; the only server state touched is
    /// the shared dataset cache.
    pub fn run_spec(&mut self, spec: &activedp::ScenarioSpec) -> Result<CellRowReply, ClientError> {
        let reply = self.call(Json::obj([
            ("cmd", Json::Str("run_spec".into())),
            ("spec", crate::spec_json::scenario_to_json(spec)),
        ]))?;
        match Self::cell_progress(&reply)? {
            CellProgressReply::Done(row) => Ok(row),
            CellProgressReply::Partial { .. } => Err(ClientError::Protocol(
                "uncapped run_spec replied with a partial slice".into(),
            )),
        }
    }

    /// Starts a sweep cell and runs at most `max_batches` schedule
    /// batches of it — the checkpointed form of [`Client::run_spec`]. A
    /// partial reply carries the boundary snapshot to feed
    /// [`Client::resume_spec_batches`], here or on another worker.
    pub fn run_spec_batches(
        &mut self,
        spec: &activedp::ScenarioSpec,
        max_batches: u64,
    ) -> Result<CellProgressReply, ClientError> {
        let reply = self.call(Json::obj([
            ("cmd", Json::Str("run_spec".into())),
            ("spec", crate::spec_json::scenario_to_json(spec)),
            ("max_batches", Json::int(max_batches)),
        ]))?;
        Self::cell_progress(&reply)
    }

    /// Continues a sweep cell from a checkpoint returned by an earlier
    /// partial slice, running at most `max_batches` further batches.
    pub fn resume_spec_batches(
        &mut self,
        snapshot: &[u8],
        max_batches: u64,
    ) -> Result<CellProgressReply, ClientError> {
        let reply = self.call(Json::obj([
            ("cmd", Json::Str("run_spec".into())),
            ("resume", Json::Str(crate::hex::encode(snapshot))),
            ("max_batches", Json::int(max_batches)),
        ]))?;
        Self::cell_progress(&reply)
    }

    /// The server's metrics in the Prometheus text exposition format.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let reply = self.call(Json::obj([("cmd", Json::Str("metrics".into()))]))?;
        reply
            .get("text")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol(format!("missing text: {reply}")))
    }

    /// The hub's health: per-shard liveness plus tiering counters.
    pub fn health(&mut self) -> Result<HealthReply, ClientError> {
        let reply = self.call(Json::obj([("cmd", Json::Str("health".into()))]))?;
        let shards = reply
            .get("shards")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol(format!("missing shards: {reply}")))?
            .iter()
            .map(|s| {
                Ok(ShardHealthReply {
                    shard: Self::expect_u64(s, "shard")?,
                    alive: s
                        .get("alive")
                        .and_then(Json::as_bool)
                        .ok_or_else(|| ClientError::Protocol(format!("missing alive: {s}")))?,
                    resident: Self::expect_u64(s, "resident")?,
                })
            })
            .collect::<Result<Vec<_>, ClientError>>()?;
        Ok(HealthReply {
            healthy: reply
                .get("healthy")
                .and_then(Json::as_bool)
                .ok_or_else(|| ClientError::Protocol(format!("missing healthy: {reply}")))?,
            shards,
            resident: Self::expect_u64(&reply, "resident")?,
            cold: Self::expect_u64(&reply, "cold")?,
            max_resident: reply.get("max_resident").and_then(Json::as_u64),
            evicted_total: Self::expect_u64(&reply, "evicted_total")?,
            resumed_total: Self::expect_u64(&reply, "resumed_total")?,
        })
    }

    /// Closes the session server-side.
    pub fn close_session(&mut self, session: u64) -> Result<(), ClientError> {
        self.call(Json::obj([
            ("cmd", Json::Str("close".into())),
            ("session", Json::int(session)),
        ]))?;
        Ok(())
    }
}
