//! Lowercase hex encoding for binary payloads riding the JSON-lines
//! protocol (the `run_spec` command ships snapshot bytes in a string
//! field). Hand-rolled for the offline-vendor constraint; two nibbles per
//! byte, strict decoding (even length, `[0-9a-fA-F]` only).

/// Encodes `bytes` as lowercase hex, two characters per byte.
pub fn encode(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xf) as usize] as char);
    }
    out
}

/// Decodes a hex string produced by [`encode`] (either nibble case).
/// Rejects odd lengths and non-hex characters with a description of the
/// offending position.
pub fn decode(hex: &str) -> Result<Vec<u8>, String> {
    if hex.len() % 2 != 0 {
        return Err(format!("hex payload has odd length {}", hex.len()));
    }
    let nibble = |c: u8, at: usize| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(format!("non-hex byte {:?} at offset {at}", c as char)),
        }
    };
    let raw = hex.as_bytes();
    let mut out = Vec::with_capacity(raw.len() / 2);
    for i in (0..raw.len()).step_by(2) {
        out.push((nibble(raw[i], i)? << 4) | nibble(raw[i + 1], i + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_all_byte_values() {
        let bytes: Vec<u8> = (0..=255).collect();
        let hex = encode(&bytes);
        assert_eq!(hex.len(), 512);
        assert_eq!(decode(&hex).unwrap(), bytes);
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn decode_accepts_uppercase_and_rejects_garbage() {
        assert_eq!(decode("DEADbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert!(decode("abc").unwrap_err().contains("odd length"));
        assert!(decode("zz").unwrap_err().contains("offset 0"));
        assert!(decode("0g").unwrap_err().contains("offset 1"));
    }
}
