//! Hub-side write-ahead logging and point-in-time recovery.
//!
//! When a [`SessionHub`] has a spill directory, every session whose engine
//! can snapshot is **journalled by default**: an [`adp_wal::Journal`] under
//! `<spill_dir>/wal-<id>/` receives the engine's per-step
//! [`StepEvent`]s through a [`StepObserver`] hook. Together with the
//! session's spill snapshot (`session-<id>.adpsnap`, the journal's
//! checkpoint) the log makes two things possible:
//!
//! * **crash recovery to the durable tip** — `SessionHub::load_all` replays
//!   each journal's tail past the last snapshot, so a killed server comes
//!   back at the last *committed* iteration, not the last explicit save;
//! * **point-in-time recovery** — [`SessionHub::recover`] rebuilds the
//!   state a session had at any journalled commit point as a *new*
//!   session, bitwise identical to the original run at that iteration.
//!
//! The journal is deliberately non-fatal at serve time: if an append fails
//! (disk full, directory deleted underneath the hub), the session keeps
//! serving and its durability degrades to snapshot-only — exactly the
//! pre-WAL behaviour. [`SessionStatus::durability`] reports `None` for
//! such sessions.
//!
//! [`SessionStatus::durability`]: crate::hub::SessionStatus::durability

use crate::hub::{ServeError, SessionHub, SessionId};
use crate::persist::{spill_file, SpillRecord};
use activedp::{Engine, ScenarioSpec, SessionSnapshot, StepEvent, StepObserver, StepOutcome};
use adp_wal::Journal;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Where a journalled session's durability stands (see
/// [`SessionStatus::durability`](crate::hub::SessionStatus::durability)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityStatus {
    /// Iteration of the last spilled snapshot — the journal's checkpoint,
    /// below which the log is compacted away.
    pub checkpoint_iteration: usize,
    /// The last iteration durable on disk as a commit point — where a
    /// crash right now would recover to.
    pub durable_iteration: usize,
    /// Live segment files (sealed plus a non-empty open segment).
    pub live_segments: usize,
}

/// The journal slot a session's [`JournalObserver`] and the hub share.
/// `None` means the session is not journalled (or its journal failed and
/// durability degraded to snapshot-only).
pub(crate) type SharedJournal = Arc<Mutex<Option<Journal>>>;

/// A fresh, not-yet-initialised journal slot (the observer is registered
/// on the engine before the session id — and therefore the journal
/// directory — is known).
pub(crate) fn new_journal_slot() -> SharedJournal {
    Arc::new(Mutex::new(None))
}

/// The engine observer that feeds a session's journal: every replayable
/// [`StepEvent`] is appended, commit points fsynced (inside
/// [`Journal::append`]).
pub(crate) struct JournalObserver {
    slot: SharedJournal,
}

impl JournalObserver {
    pub(crate) fn new(slot: SharedJournal) -> Self {
        JournalObserver { slot }
    }
}

impl StepObserver for JournalObserver {
    fn on_step(&mut self, _outcome: &StepOutcome) {}

    fn wants_events(&self) -> bool {
        true
    }

    fn on_event(&mut self, event: &StepEvent) {
        let Ok(mut slot) = self.slot.lock() else {
            return;
        };
        let Some(journal) = slot.as_mut() else {
            return;
        };
        if journal.append(event).is_err() {
            // Journalling is best-effort at serve time: on the first failed
            // append the session's durability degrades to snapshot-only
            // (the session itself keeps serving). Dropping the journal
            // keeps a half-written log from masquerading as durable.
            *slot = None;
        }
    }
}

/// The journal directory for one session under a spill directory.
pub(crate) fn wal_dir(spill: &Path, id: u64) -> PathBuf {
    spill.join(format!("wal-{id}"))
}

pub(crate) fn corrupt_journal(path: &Path, reason: impl Into<String>) -> ServeError {
    ServeError::CorruptJournal {
        path: path.to_path_buf(),
        reason: reason.into(),
    }
}

impl SessionHub {
    /// The identified session's shared journal slot, if it has one.
    pub(crate) fn journal_slot(&self, id: u64) -> Option<SharedJournal> {
        self.shared.journal_slot(id)
    }

    /// Durability of the identified session, `None` when it is not
    /// journalled (no spill dir, unsnapshotable engine, or a failed
    /// journal).
    pub(crate) fn durability(&self, id: u64) -> Option<DurabilityStatus> {
        let slot = self.journal_slot(id)?;
        let guard = crate::hub::lock_clean(&slot);
        let journal = guard.as_ref()?;
        Some(DurabilityStatus {
            checkpoint_iteration: journal.checkpoint_iteration(),
            durable_iteration: journal.durable_iteration(),
            live_segments: journal.live_segments(),
        })
    }

    /// Creates the journal for a freshly registered session and arms its
    /// observer's slot. For sessions adopted mid-run (iteration > 0) the
    /// covering snapshot is spilled immediately, so the journal's
    /// checkpoint is always recoverable from disk.
    pub(crate) fn init_journal(
        &self,
        id: SessionId,
        snapshot: SessionSnapshot,
        slot: &SharedJournal,
    ) -> Result<(), ServeError> {
        let spill = self.require_spill_dir()?;
        let dir = wal_dir(&spill, id.raw());
        let iteration = snapshot.state.iteration;
        let journal = Journal::create(&dir, id.raw(), snapshot.spec.clone(), iteration)
            .map_err(ServeError::Wal)?;
        *crate::hub::lock_clean(slot) = Some(journal);
        crate::hub::lock_clean(&self.shared.journals).insert(id.raw(), slot.clone());
        if iteration > 0 {
            self.save(id)?;
        }
        Ok(())
    }

    /// Registers a loaded engine under its original id and (re)attaches
    /// its journal — the `load_all` adoption path.
    pub(crate) fn adopt_loaded(
        &self,
        id: u64,
        mut engine: Engine,
        journal: Option<Journal>,
    ) -> Result<SessionId, ServeError> {
        let slot = journal.map(|j| Arc::new(Mutex::new(Some(j))));
        if let Some(slot) = &slot {
            engine.add_observer(JournalObserver::new(slot.clone()));
        }
        self.insert_preserving_id(id, engine)?;
        if let Some(slot) = slot {
            crate::hub::lock_clean(&self.shared.journals).insert(id, slot);
        }
        Ok(SessionId::from_raw(id))
    }

    /// Rebuilds the state session `id` had at `iteration` — which must be
    /// a journalled commit point at or past the session's checkpoint — and
    /// registers it as a **new** session, returning the new id. The source
    /// session (live or long gone; only its files need to exist) is not
    /// touched. The recovered state is bitwise identical to the original
    /// run's at that iteration, so stepping the new session forward
    /// retraces the original trajectory exactly.
    pub fn recover(&self, id: SessionId, iteration: usize) -> Result<SessionId, ServeError> {
        let (base, events) = self.recovery_base(id)?;
        let data = self.dataset_for(base.spec.dataset)?;
        let engine = Engine::replay_to_over(&base, &events, iteration, data)?;
        self.create(engine)
    }

    /// The checkpoint snapshot and live event tail recovery folds over:
    /// from the live journal when the session is up (a journal directory
    /// is single-writer — it must not be re-opened underneath its owner),
    /// else from disk.
    fn recovery_base(
        &self,
        id: SessionId,
    ) -> Result<(SessionSnapshot, Vec<StepEvent>), ServeError> {
        let spill = self.require_spill_dir()?;
        let wal_path = wal_dir(&spill, id.raw());
        let mut journal_state: Option<(ScenarioSpec, usize, Vec<StepEvent>)> = None;
        if let Some(slot) = self.journal_slot(id.raw()) {
            // Poison-safe: skipping a *live* journal here would re-open a
            // single-writer directory underneath its owner.
            let guard = crate::hub::lock_clean(&slot);
            if let Some(journal) = guard.as_ref() {
                journal_state = Some((
                    journal.spec().clone(),
                    journal.checkpoint_iteration(),
                    journal.events().map_err(ServeError::Wal)?,
                ));
            }
        }
        if journal_state.is_none() && wal_path.is_dir() {
            // No live writer (session closed, never reloaded, or its
            // journal degraded): open — and thereby recover — the
            // directory contents.
            let journal = Journal::open(&wal_path).map_err(ServeError::Wal)?;
            if journal.session() != id.raw() {
                return Err(corrupt_journal(
                    &wal_path,
                    format!("manifest belongs to session {}", journal.session()),
                ));
            }
            journal_state = Some((
                journal.spec().clone(),
                journal.checkpoint_iteration(),
                journal.events().map_err(ServeError::Wal)?,
            ));
        }

        let spill_path = spill_file(&spill, id.raw());
        let base = match std::fs::read(&spill_path) {
            Ok(bytes) => {
                let record = SpillRecord::from_bytes(&bytes).map_err(|source| {
                    ServeError::CorruptSnapshot {
                        path: spill_path.clone(),
                        source,
                    }
                })?;
                if record.session != id.raw() {
                    return Err(ServeError::CorruptSnapshot {
                        path: spill_path,
                        source: activedp::ActiveDpError::BadConfig {
                            reason: format!("spill file records session {}", record.session),
                        },
                    });
                }
                record.snapshot
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => match &journal_state {
                // No snapshot on disk: the journal must start at iteration
                // 0, whose state the manifest's spec alone rebuilds.
                Some((spec, checkpoint, _)) => {
                    if *checkpoint != 0 {
                        return Err(corrupt_journal(
                            &wal_path,
                            format!("checkpoint {checkpoint} has no covering snapshot on disk"),
                        ));
                    }
                    let data = self.dataset_for(spec.dataset)?;
                    Engine::from_spec_over(spec.clone(), data)?.snapshot()?
                }
                None => {
                    // Nothing recoverable on disk. Distinguish "no such
                    // session" from "live but journal-free".
                    return Err(if self.status(id).is_ok() {
                        ServeError::NotPersistable(id)
                    } else {
                        ServeError::UnknownSession(id)
                    });
                }
            },
            Err(source) => {
                return Err(ServeError::Io {
                    path: spill_path,
                    source,
                })
            }
        };
        let events = journal_state
            .map(|(_, _, events)| events)
            .unwrap_or_default();
        Ok((base, events))
    }
}
