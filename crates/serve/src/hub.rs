//! The sharded session registry: engines behind ids, one worker thread per
//! shard.

use crate::journal::{new_journal_slot, DurabilityStatus, JournalObserver, SharedJournal};
use activedp::{
    ActiveDpError, Engine, EngineBuilder, EvalReport, ScenarioSpec, SessionConfig, SessionSnapshot,
    StepOutcome,
};
use adp_data::{DatasetId, DatasetSpec, SharedDataset};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Opaque handle to one session inside a [`SessionHub`].
///
/// Ids are unique for the lifetime of the hub (a monotone counter, never
/// reused after [`SessionHub::close`]) and also encode the shard the
/// session lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw id, e.g. for logging or an external routing table.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from a raw id (spill files and the network
    /// protocol carry raw ids; whether a session answers to it is decided
    /// per call, as always).
    pub fn from_raw(id: u64) -> Self {
        SessionId(id)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Errors surfaced by [`SessionHub`] calls.
#[derive(Debug)]
pub enum ServeError {
    /// No session with that id (never created, or already closed).
    UnknownSession(SessionId),
    /// A restore asked for an id another live session already holds.
    SessionExists(SessionId),
    /// A `step_batch` request with `k = 0`. The engine itself treats an
    /// empty batch as a no-op, but at the service boundary it is always a
    /// caller bug, so the hub rejects it before routing to a shard.
    EmptyBatch,
    /// The session's engine returned an error.
    Engine(ActiveDpError),
    /// A persistence call on a hub with no spill directory (neither
    /// [`SessionHub::with_spill_dir`] nor `ADP_SPILL_DIR`).
    NoSpillDir,
    /// The session cannot be described as a [`ScenarioSpec`] — its dataset
    /// carries no regenerable provenance (a hand-built split), or its
    /// oracle exposes no snapshot state — so there is nothing to spill
    /// that could be restored at load time.
    NotPersistable(SessionId),
    /// A filesystem operation on the spill directory failed.
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A spill file failed to decode (truncated, foreign, or from a newer
    /// format version).
    CorruptSnapshot {
        /// The offending file.
        path: PathBuf,
        /// The codec's typed rejection.
        source: ActiveDpError,
    },
    /// A write-ahead log operation failed (the typed WAL error names the
    /// file and what was wrong with it).
    Wal(adp_wal::WalError),
    /// A journal decoded cleanly but contradicts the session it claims to
    /// belong to — wrong session id, a spec disagreeing with the spill
    /// snapshot, or a checkpoint no snapshot on disk covers.
    CorruptJournal {
        /// The journal directory (or file) involved.
        path: PathBuf,
        /// What was inconsistent.
        reason: String,
    },
    /// The hub's workers are gone (the hub was dropped mid-call).
    HubClosed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownSession(id) => write!(f, "unknown {id}"),
            ServeError::SessionExists(id) => write!(f, "{id} already exists"),
            ServeError::EmptyBatch => write!(f, "step_batch requires k >= 1"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::NoSpillDir => {
                write!(
                    f,
                    "no spill directory (set ADP_SPILL_DIR or use with_spill_dir)"
                )
            }
            ServeError::NotPersistable(id) => {
                write!(
                    f,
                    "{id} has no scenario to persist (hand-built dataset or stateless oracle)"
                )
            }
            ServeError::Io { path, source } => write!(f, "io on {}: {source}", path.display()),
            ServeError::CorruptSnapshot { path, source } => {
                write!(f, "corrupt snapshot {}: {source}", path.display())
            }
            ServeError::Wal(source) => write!(f, "{source}"),
            ServeError::CorruptJournal { path, reason } => {
                write!(f, "corrupt journal {}: {reason}", path.display())
            }
            ServeError::HubClosed => write!(f, "session hub is shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            ServeError::Io { source, .. } => Some(source),
            ServeError::CorruptSnapshot { source, .. } => Some(source),
            ServeError::Wal(source) => Some(source),
            _ => None,
        }
    }
}

impl From<ActiveDpError> for ServeError {
    fn from(e: ActiveDpError) -> Self {
        ServeError::Engine(e)
    }
}

/// Where a session currently stands (see [`SessionHub::status`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStatus {
    /// Completed loop iterations.
    pub iteration: usize,
    /// LFs collected so far.
    pub n_lfs: usize,
    /// LFs currently selected by LabelPick.
    pub n_selected: usize,
    /// Write-ahead-log durability, for journalled sessions: last
    /// checkpointed iteration, last durable iteration, live segment count.
    /// `None` when the session is not journalled (no spill directory,
    /// unsnapshotable engine, or a degraded journal).
    pub durability: Option<DurabilityStatus>,
}

/// One request to a shard worker. Every variant carries its own reply
/// channel, so concurrent callers never contend on a shared reply path.
enum Command {
    Insert {
        id: u64,
        engine: Box<Engine>,
        /// `Err` hands the engine back when the id is already live, so the
        /// caller can retry under another id without rebuilding it.
        reply: Sender<Result<(), Box<Engine>>>,
    },
    Snapshot {
        id: u64,
        reply: Sender<Result<SessionSnapshot, ServeError>>,
    },
    Status {
        id: u64,
        reply: Sender<Result<SessionStatus, ServeError>>,
    },
    List {
        reply: Sender<Vec<u64>>,
    },
    Step {
        id: u64,
        reply: Sender<Result<StepOutcome, ServeError>>,
    },
    StepBatch {
        id: u64,
        k: usize,
        reply: Sender<Result<Vec<StepOutcome>, ServeError>>,
    },
    Run {
        id: u64,
        iterations: usize,
        reply: Sender<Result<(), ServeError>>,
    },
    Evaluate {
        id: u64,
        reply: Sender<Result<EvalReport, ServeError>>,
    },
    Close {
        id: u64,
        reply: Sender<Result<(), ServeError>>,
    },
    Count {
        reply: Sender<usize>,
    },
}

/// A registry of concurrent labelling sessions, sharded over worker
/// threads.
///
/// Sessions are owned by their shard's worker; the hub routes each call to
/// the right shard (`id % n_shards`) and blocks on the reply. Calls for
/// *different* sessions on different shards run in parallel; calls for
/// sessions on the same shard serialise in arrival order — within one
/// session that is exactly the engine's own sequential semantics, so
/// per-session trajectories are deterministic regardless of hub load.
pub struct SessionHub {
    shards: Vec<Sender<Command>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    /// Where snapshots spill (explicit, else `ADP_SPILL_DIR`, else none).
    spill_dir: Option<PathBuf>,
    /// Generated splits by spec, so every session naming the same spec —
    /// including all sessions re-opened by `load_all` — shares one
    /// `SharedDataset` allocation.
    datasets: Mutex<HashMap<(DatasetId, u64, u64), SharedDataset>>,
    /// Each journalled session's journal slot, shared with the
    /// `JournalObserver` registered on its engine (which appends from the
    /// shard thread while the hub checkpoints/inspects from callers).
    pub(crate) journals: Mutex<HashMap<u64, SharedJournal>>,
}

impl SessionHub {
    /// A hub with `n_shards` worker threads (at least one). Snapshots spill
    /// to `ADP_SPILL_DIR` when that variable is set; use
    /// [`SessionHub::with_spill_dir`] to pick the directory explicitly.
    pub fn new(n_shards: usize) -> Self {
        let spill = std::env::var_os("ADP_SPILL_DIR").map(PathBuf::from);
        Self::with_shards_and_spill(n_shards, spill)
    }

    /// A hub whose [`SessionHub::save_all`]/[`SessionHub::load_all`] use
    /// `spill_dir` (created on first save).
    pub fn with_spill_dir(n_shards: usize, spill_dir: impl Into<PathBuf>) -> Self {
        Self::with_shards_and_spill(n_shards, Some(spill_dir.into()))
    }

    pub(crate) fn with_shards_and_spill(n_shards: usize, spill_dir: Option<PathBuf>) -> Self {
        let n = n_shards.max(1);
        let mut shards = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for k in 0..n {
            let (tx, rx) = channel();
            shards.push(tx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("adp-serve-shard-{k}"))
                    .spawn(move || shard_worker(rx))
                    .expect("shard worker spawns"),
            );
        }
        SessionHub {
            shards,
            workers,
            next_id: AtomicU64::new(0),
            spill_dir,
            datasets: Mutex::new(HashMap::new()),
            journals: Mutex::new(HashMap::new()),
        }
    }

    /// Number of shard workers.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The directory snapshots spill to, when one is configured.
    pub fn spill_dir(&self) -> Option<&std::path::Path> {
        self.spill_dir.as_deref()
    }

    /// Registers a ready-built engine and returns its session id.
    ///
    /// Persistence follows the engine: sessions whose engine can describe
    /// itself as a [`ScenarioSpec`] (see `Engine::scenario`) spill and
    /// reload normally; engines over hand-built, provenance-less datasets
    /// serve fine but are skipped by [`SessionHub::save_all`].
    ///
    /// When the hub has a spill directory, every snapshotable session is
    /// additionally **journalled by default**: its per-step events stream
    /// into a write-ahead log under `wal-<id>/`, making the session
    /// recoverable to its last committed iteration after a crash — and to
    /// any earlier commit point via [`SessionHub::recover`].
    pub fn create(&self, engine: Engine) -> Result<SessionId, ServeError> {
        // Decide journalability before the engine is moved: exactly the
        // sessions that can snapshot can journal (the snapshot doubles as
        // the journal's checkpoint description).
        let journal_base = match self.spill_dir() {
            None => None,
            Some(_) => match engine.snapshot() {
                Ok(snapshot) => Some(snapshot),
                Err(ActiveDpError::SnapshotUnsupported { .. }) => None,
                Err(e) => return Err(ServeError::Engine(e)),
            },
        };
        let mut engine = engine;
        let slot = journal_base.as_ref().map(|_| new_journal_slot());
        if let Some(slot) = &slot {
            // Armed only after the id — and therefore the journal
            // directory — is known; the engine cannot step before `create`
            // returns the id to anyone, so no event outruns the journal.
            engine.add_observer(JournalObserver::new(slot.clone()));
        }
        let mut engine = Box::new(engine);
        let id = loop {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            match self.try_insert(id, engine)? {
                Ok(()) => break SessionId(id),
                // A concurrent `load_all` restored this very id before its
                // allocator bump landed; that id belongs to the restored
                // session, so take the engine back and allocate a fresh one.
                Err(returned) => engine = returned,
            }
        };
        if let (Some(snapshot), Some(slot)) = (journal_base, slot) {
            if let Err(e) = self.init_journal(id, snapshot, &slot) {
                // The caller asked for a durable hub and the journal could
                // not be established — fail the create rather than serve a
                // session that silently is not durable.
                let _ = self.close(id);
                return Err(e);
            }
        }
        Ok(id)
    }

    /// Builds the engine from `builder` and registers it — the one-call
    /// path from dataset to served session. Build errors (invalid config)
    /// surface before any id is allocated.
    pub fn open(&self, builder: EngineBuilder) -> Result<SessionId, ServeError> {
        self.create(builder.build()?)
    }

    /// Builds and registers the session a [`ScenarioSpec`] describes — the
    /// declarative path from one serializable run description to a served
    /// session (the network front end's `create_spec` request lands here).
    /// The split is generated once per distinct dataset spec and shared
    /// between all sessions naming it; the engine routes through
    /// `Engine::from_spec_over`, so the hub cannot drift from the solo
    /// constructor. Invalid specs (bad config ranges, degenerate schedules
    /// like `FixedBatch{k: 0}`, an ungeneratable dataset) fail here, before
    /// any id is allocated.
    pub fn create_from_spec(&self, spec: ScenarioSpec) -> Result<SessionId, ServeError> {
        spec.validate().map_err(ServeError::Engine)?;
        let data = self.dataset_for(spec.dataset)?;
        self.create(Engine::from_spec_over(spec, data)?)
    }

    /// Generates (or re-uses) the split named by `spec` and opens a session
    /// over it with `config` — sugar for [`SessionHub::create_from_spec`]
    /// with the default schedule and budget; the session persists across
    /// restarts like any spec-described session.
    pub fn open_spec(
        &self,
        spec: DatasetSpec,
        config: SessionConfig,
    ) -> Result<SessionId, ServeError> {
        self.create_from_spec(ScenarioSpec {
            session: config,
            ..ScenarioSpec::new(spec)
        })
    }

    /// Resumes a snapshot over an explicitly supplied dataset under a
    /// fresh id (the cache-bypassing sibling of the `load_all` path; the
    /// split must match the provenance recorded in the snapshot's spec).
    pub fn restore(
        &self,
        data: SharedDataset,
        snapshot: SessionSnapshot,
    ) -> Result<SessionId, ServeError> {
        let engine = Engine::builder(data).resume(snapshot)?;
        self.create(engine)
    }

    /// Captures the identified session's [`SessionSnapshot`] (the session
    /// keeps running; snapshots are read-only).
    pub fn snapshot(&self, id: SessionId) -> Result<SessionSnapshot, ServeError> {
        self.call(id.0, |reply| Command::Snapshot { id: id.0, reply })?
    }

    /// Cheap progress probe for the identified session (the network
    /// front end's `open` verb — a reconnecting client learns where its
    /// session left off without pulling a full snapshot).
    pub fn status(&self, id: SessionId) -> Result<SessionStatus, ServeError> {
        let mut status = self.call(id.0, |reply| Command::Status { id: id.0, reply })??;
        status.durability = self.durability(id.0);
        Ok(status)
    }

    /// Ids of every live session, ascending.
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|shard| {
                let (reply, rx) = channel();
                if shard.send(Command::List { reply }).is_err() {
                    return vec![];
                }
                rx.recv().unwrap_or_default()
            })
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(SessionId).collect()
    }

    /// Registers `engine` under a *specific* id (the `load_all` path, which
    /// preserves ids across restarts so client handles stay valid). Bumps
    /// the id allocator past `id` and rejects collisions with live
    /// sessions.
    pub(crate) fn insert_preserving_id(&self, id: u64, engine: Engine) -> Result<(), ServeError> {
        // `id` comes from a spill file, i.e. from disk: saturate instead of
        // computing `id + 1` so a tampered file carrying u64::MAX cannot
        // panic (dev) or wrap the allocator to 0 (release). The persist
        // layer additionally rejects that id as corrupt before calling in.
        self.next_id
            .fetch_max(id.saturating_add(1), Ordering::Relaxed);
        match self.try_insert(id, Box::new(engine))? {
            Ok(()) => Ok(()),
            Err(_) => Err(ServeError::SessionExists(SessionId(id))),
        }
    }

    /// The shared split for `spec`, generated once per hub. The cache lock
    /// is *not* held across generation (which can take seconds at paper
    /// scale), so concurrent `open_spec` calls for different specs generate
    /// in parallel; a racing duplicate generation of the same spec is
    /// resolved by keeping the first insert (both copies are
    /// bitwise-identical anyway — generation is deterministic in the spec).
    pub(crate) fn dataset_for(&self, spec: DatasetSpec) -> Result<SharedDataset, ServeError> {
        if let Some(data) = self
            .datasets
            .lock()
            .expect("datasets lock")
            .get(&spec.cache_key())
        {
            return Ok(data.clone());
        }
        let data = spec
            .generate()
            .map_err(|e| {
                ServeError::Engine(ActiveDpError::BadConfig {
                    reason: format!("dataset spec failed to generate: {e}"),
                })
            })?
            .into_shared();
        let mut cache = self.datasets.lock().expect("datasets lock");
        Ok(cache.entry(spec.cache_key()).or_insert(data).clone())
    }

    /// Routes an insert to `id`'s shard; the inner `Err` returns the
    /// engine when the id is already occupied.
    fn try_insert(
        &self,
        id: u64,
        engine: Box<Engine>,
    ) -> Result<Result<(), Box<Engine>>, ServeError> {
        self.call(id, |reply| Command::Insert { id, engine, reply })
    }

    /// One training iteration of the identified session.
    pub fn step(&self, id: SessionId) -> Result<StepOutcome, ServeError> {
        self.call(id.0, |reply| Command::Step { id: id.0, reply })?
    }

    /// Batched stepping: up to `k` queries, one refit (see
    /// `Engine::step_batch`). `k = 0` is rejected with
    /// [`ServeError::EmptyBatch`] without touching the session.
    pub fn step_batch(&self, id: SessionId, k: usize) -> Result<Vec<StepOutcome>, ServeError> {
        if k == 0 {
            return Err(ServeError::EmptyBatch);
        }
        self.call(id.0, |reply| Command::StepBatch { id: id.0, k, reply })?
    }

    /// Runs `iterations` single steps on the identified session.
    pub fn run(&self, id: SessionId, iterations: usize) -> Result<(), ServeError> {
        self.call(id.0, |reply| Command::Run {
            id: id.0,
            iterations,
            reply,
        })?
    }

    /// Inference-phase evaluation of the identified session.
    pub fn evaluate(&self, id: SessionId) -> Result<EvalReport, ServeError> {
        self.call(id.0, |reply| Command::Evaluate { id: id.0, reply })?
    }

    /// Drops the identified session, freeing its engine (a closed session
    /// is not re-saved). Its journal handle is released too; the journal
    /// *files* stay on disk, so the session remains recoverable (and is
    /// reloaded by a later [`SessionHub::load_all`]) until the operator
    /// removes them.
    pub fn close(&self, id: SessionId) -> Result<(), ServeError> {
        let result: Result<(), ServeError> =
            self.call(id.0, |reply| Command::Close { id: id.0, reply })?;
        if result.is_ok() {
            self.journals
                .lock()
                .expect("journal registry")
                .remove(&id.0);
        }
        result
    }

    /// Number of live sessions across all shards.
    pub fn session_count(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let (reply, rx) = channel();
                if shard.send(Command::Count { reply }).is_err() {
                    return 0;
                }
                rx.recv().unwrap_or(0)
            })
            .sum()
    }

    /// Routes one command to the owning shard and blocks on its reply.
    fn call<T>(&self, id: u64, make: impl FnOnce(Sender<T>) -> Command) -> Result<T, ServeError> {
        let shard = &self.shards[(id as usize) % self.shards.len()];
        let (reply, rx) = channel();
        shard.send(make(reply)).map_err(|_| ServeError::HubClosed)?;
        rx.recv().map_err(|_| ServeError::HubClosed)
    }
}

impl Drop for SessionHub {
    fn drop(&mut self) {
        // Closing the senders ends each worker's receive loop; join so no
        // worker outlives the hub.
        self.shards.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn shard_worker(rx: Receiver<Command>) {
    let mut sessions: HashMap<u64, Engine> = HashMap::new();
    // Replies may fail only when the caller gave up (hub dropped mid-call);
    // the worker just moves on.
    for command in rx {
        match command {
            Command::Insert { id, engine, reply } => {
                let _ = reply.send(match sessions.entry(id) {
                    std::collections::hash_map::Entry::Occupied(_) => Err(engine),
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(*engine);
                        Ok(())
                    }
                });
            }
            Command::Snapshot { id, reply } => {
                let _ = reply.send(with_session(&mut sessions, id, |e| {
                    e.snapshot().map_err(ServeError::Engine)
                }));
            }
            Command::Status { id, reply } => {
                let _ = reply.send(with_session(&mut sessions, id, |e| {
                    Ok(SessionStatus {
                        iteration: e.state().iteration,
                        n_lfs: e.state().lfs.len(),
                        n_selected: e.state().selected.len(),
                        // The shard worker has no view of the journal
                        // registry; the hub fills this in on the way out.
                        durability: None,
                    })
                }));
            }
            Command::List { reply } => {
                let mut ids: Vec<u64> = sessions.keys().copied().collect();
                ids.sort_unstable();
                let _ = reply.send(ids);
            }
            Command::Step { id, reply } => {
                let _ = reply.send(with_session(&mut sessions, id, |e| {
                    e.step().map_err(ServeError::Engine)
                }));
            }
            Command::StepBatch { id, k, reply } => {
                let _ = reply.send(with_session(&mut sessions, id, |e| {
                    e.step_batch(k).map_err(ServeError::Engine)
                }));
            }
            Command::Run {
                id,
                iterations,
                reply,
            } => {
                let _ = reply.send(with_session(&mut sessions, id, |e| {
                    e.run(iterations).map_err(ServeError::Engine)
                }));
            }
            Command::Evaluate { id, reply } => {
                let _ = reply.send(with_session(&mut sessions, id, |e| {
                    e.evaluate_downstream().map_err(ServeError::Engine)
                }));
            }
            Command::Close { id, reply } => {
                let _ = reply.send(
                    sessions
                        .remove(&id)
                        .map(|_| ())
                        .ok_or(ServeError::UnknownSession(SessionId(id))),
                );
            }
            Command::Count { reply } => {
                let _ = reply.send(sessions.len());
            }
        }
    }
}

fn with_session<T>(
    sessions: &mut HashMap<u64, Engine>,
    id: u64,
    f: impl FnOnce(&mut Engine) -> Result<T, ServeError>,
) -> Result<T, ServeError> {
    match sessions.get_mut(&id) {
        Some(engine) => f(engine),
        None => Err(ServeError::UnknownSession(SessionId(id))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{generate, DatasetId, Scale, SharedDataset};

    fn tiny() -> SharedDataset {
        generate(DatasetId::Youtube, Scale::Tiny, 7)
            .unwrap()
            .into_shared()
    }

    fn engine(data: &SharedDataset, seed: u64) -> Engine {
        Engine::builder(data.clone()).seed(seed).build().unwrap()
    }

    /// The trajectory fingerprint compared between hub and solo runs.
    fn fingerprint(outcomes: &[StepOutcome], report: &EvalReport) -> (Vec<Option<usize>>, u64) {
        (
            outcomes.iter().map(|o| o.query).collect(),
            report.test_accuracy.to_bits(),
        )
    }

    #[test]
    fn create_step_evaluate_close_roundtrip() {
        let hub = SessionHub::new(2);
        let id = hub.create(engine(&tiny(), 1)).unwrap();
        let out = hub.step(id).unwrap();
        assert_eq!(out.iteration, 1);
        hub.run(id, 4).unwrap();
        let report = hub.evaluate(id).unwrap();
        assert!((0.0..=1.0).contains(&report.test_accuracy));
        assert_eq!(hub.session_count(), 1);
        hub.close(id).unwrap();
        assert_eq!(hub.session_count(), 0);
        assert!(matches!(hub.step(id), Err(ServeError::UnknownSession(_))));
    }

    #[test]
    fn open_builds_and_registers() {
        let hub = SessionHub::new(1);
        let id = hub.open(Engine::builder(tiny()).seed(3)).unwrap();
        assert_eq!(hub.step(id).unwrap().iteration, 1);
        // Build errors surface synchronously, no id leaked.
        let err = hub.open(Engine::builder(tiny()).alpha(7.0));
        assert!(matches!(err, Err(ServeError::Engine(_))));
        assert_eq!(hub.session_count(), 1);
    }

    #[test]
    fn step_batch_routes_through_the_hub() {
        let hub = SessionHub::new(2);
        let id = hub.create(engine(&tiny(), 2)).unwrap();
        let outcomes = hub.step_batch(id, 5).unwrap();
        assert_eq!(outcomes.len(), 5);
        assert_eq!(outcomes.last().unwrap().iteration, 5);
    }

    #[test]
    fn ids_spread_across_shards() {
        let hub = SessionHub::new(3);
        let data = tiny();
        for seed in 0..6 {
            hub.create(engine(&data, seed)).unwrap();
        }
        assert_eq!(hub.session_count(), 6);
        assert_eq!(hub.n_shards(), 3);
    }

    #[test]
    fn concurrent_sessions_match_solo_trajectories() {
        // The acceptance bar: ≥ 8 sessions stepped concurrently through
        // the hub reproduce their solo trajectories bit for bit.
        const SESSIONS: u64 = 8;
        const ITERS: usize = 10;
        let data = tiny();

        let solo: Vec<_> = (0..SESSIONS)
            .map(|seed| {
                let mut e = engine(&data, seed);
                let outcomes: Vec<StepOutcome> = (0..ITERS).map(|_| e.step().unwrap()).collect();
                let report = e.evaluate_downstream().unwrap();
                fingerprint(&outcomes, &report)
            })
            .collect();

        let hub = SessionHub::new(4);
        let ids: Vec<SessionId> = (0..SESSIONS)
            .map(|seed| hub.create(engine(&data, seed)).unwrap())
            .collect();
        let hubbed: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = ids
                .iter()
                .map(|&id| {
                    let hub = &hub;
                    scope.spawn(move || {
                        let outcomes: Vec<StepOutcome> =
                            (0..ITERS).map(|_| hub.step(id).unwrap()).collect();
                        let report = hub.evaluate(id).unwrap();
                        fingerprint(&outcomes, &report)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });

        assert_eq!(solo, hubbed);
    }

    #[test]
    fn every_call_rejects_an_unknown_session() {
        // An id minted by one hub is unknown to another (same counter
        // start, but nothing was ever inserted there): every session call
        // must answer `UnknownSession`, not hang or panic.
        let minting_hub = SessionHub::new(2);
        let foreign = minting_hub.create(engine(&tiny(), 1)).unwrap();
        let hub = SessionHub::new(2);
        assert!(matches!(
            hub.step(foreign),
            Err(ServeError::UnknownSession(id)) if id == foreign
        ));
        assert!(matches!(
            hub.step_batch(foreign, 3),
            Err(ServeError::UnknownSession(_))
        ));
        assert!(matches!(
            hub.run(foreign, 2),
            Err(ServeError::UnknownSession(_))
        ));
        assert!(matches!(
            hub.evaluate(foreign),
            Err(ServeError::UnknownSession(_))
        ));
        assert!(matches!(
            hub.close(foreign),
            Err(ServeError::UnknownSession(_))
        ));
        // The failed calls must not have created state as a side effect.
        assert_eq!(hub.session_count(), 0);
    }

    #[test]
    fn double_close_reports_unknown_session() {
        let hub = SessionHub::new(2);
        let id = hub.create(engine(&tiny(), 1)).unwrap();
        hub.close(id).unwrap();
        assert!(matches!(
            hub.close(id),
            Err(ServeError::UnknownSession(other)) if other == id
        ));
        // Ids are never reused: a fresh session gets a fresh id and the
        // stale handle stays dead.
        let fresh = hub.create(engine(&tiny(), 2)).unwrap();
        assert_ne!(fresh, id);
        assert!(matches!(hub.step(id), Err(ServeError::UnknownSession(_))));
        assert_eq!(hub.session_count(), 1);
    }

    #[test]
    fn step_batch_zero_is_rejected_before_routing() {
        let hub = SessionHub::new(1);
        let id = hub.create(engine(&tiny(), 1)).unwrap();
        assert!(matches!(hub.step_batch(id, 0), Err(ServeError::EmptyBatch)));
        // Even against an unknown id the argument error wins: nothing is
        // routed to a shard.
        let other_hub = SessionHub::new(1);
        let foreign = other_hub.create(engine(&tiny(), 2)).unwrap();
        assert!(matches!(
            hub.step_batch(foreign, 0),
            Err(ServeError::EmptyBatch)
        ));
        // The session is untouched and still serviceable.
        assert_eq!(hub.step(id).unwrap().iteration, 1);
    }

    #[test]
    fn create_from_spec_builds_and_shares_the_dataset() {
        use activedp::{BudgetSchedule, ScenarioSpec};
        let hub = SessionHub::new(2);
        let dataset = adp_data::DatasetSpec {
            id: DatasetId::Youtube,
            scale: Scale::Tiny,
            seed: 7,
        };
        let mut spec = ScenarioSpec::new(dataset);
        spec.session.seed = 3;
        spec.schedule = BudgetSchedule::FixedBatch { k: 4 };
        spec.budget = 8;
        let a = hub.create_from_spec(spec.clone()).unwrap();
        let b = hub.create_from_spec(spec.clone()).unwrap();
        assert_ne!(a, b);
        assert_eq!(hub.step(a).unwrap().iteration, 1);
        // The served session *is* the spec's engine: its snapshot embeds
        // the very spec it was created from (iteration aside).
        let snap = hub.snapshot(a).unwrap();
        assert_eq!(snap.spec.dataset, dataset);
        assert_eq!(snap.spec.schedule, spec.schedule);
        assert_eq!(snap.spec.budget, 8);
        // A named scale and the equivalent custom factor are the same
        // provenance: the second spec reuses the first's cached split and
        // must not be rejected by the provenance check.
        let mut custom = spec.clone();
        custom.dataset.scale = Scale::Custom(Scale::Tiny.factor());
        let c = hub.create_from_spec(custom).unwrap();
        assert_eq!(hub.step(c).unwrap().iteration, 1);
    }

    #[test]
    fn invalid_specs_are_rejected_before_any_id_is_allocated() {
        use activedp::{BudgetSchedule, ScenarioSpec};
        let hub = SessionHub::new(1);
        let dataset = adp_data::DatasetSpec {
            id: DatasetId::Youtube,
            scale: Scale::Tiny,
            seed: 7,
        };
        // Degenerate schedule: the service boundary mirror of EmptyBatch.
        let mut degenerate = ScenarioSpec::new(dataset);
        degenerate.schedule = BudgetSchedule::FixedBatch { k: 0 };
        assert!(matches!(
            hub.create_from_spec(degenerate),
            Err(ServeError::Engine(ActiveDpError::BadConfig { .. }))
        ));
        // Out-of-range session knob.
        let mut bad_alpha = ScenarioSpec::new(dataset);
        bad_alpha.session.alpha = 7.0;
        assert!(matches!(
            hub.create_from_spec(bad_alpha),
            Err(ServeError::Engine(ActiveDpError::BadConfig { .. }))
        ));
        // Ungeneratable dataset spec (scale factor outside (0, 64]).
        let unknown_dataset = ScenarioSpec::new(adp_data::DatasetSpec {
            id: DatasetId::Youtube,
            scale: Scale::Custom(128.0),
            seed: 1,
        });
        assert!(matches!(
            hub.create_from_spec(unknown_dataset),
            Err(ServeError::Engine(ActiveDpError::BadConfig { .. }))
        ));
        assert_eq!(hub.session_count(), 0);
    }

    #[test]
    fn error_messages_render() {
        let hub = SessionHub::new(1);
        let id = hub.create(engine(&tiny(), 1)).unwrap();
        hub.close(id).unwrap();
        let unknown = hub.step(id).unwrap_err();
        assert!(unknown.to_string().contains("unknown session-"));
        assert!(ServeError::EmptyBatch.to_string().contains("k >= 1"));
    }

    #[test]
    fn dropping_the_hub_joins_workers() {
        let hub = SessionHub::new(2);
        let id = hub.create(engine(&tiny(), 1)).unwrap();
        hub.step(id).unwrap();
        drop(hub); // must not hang or panic
    }
}
