//! The sharded session registry: engines behind ids, one worker thread per
//! shard, with hot/cold tiering under a configurable memory budget.
//!
//! Sessions are **hot** (engine resident in its shard worker's map) or
//! **cold** (engine dropped, state spilled to `session-<id>.adpsnap`, WAL
//! checkpointed behind the snapshot). When a memory budget is set
//! ([`SessionHub::with_memory_budget`] / `ADP_MAX_RESIDENT`) the hub keeps
//! at most that many sessions hot, evicting the least-recently-touched
//! first. Cold sessions resume transparently on their next touch — inside
//! the shard worker, so callers never observe eviction: an
//! `evict → touch → run-to-end` trajectory is bitwise identical to the
//! uninterrupted run, post-run snapshot bytes included (the same parity
//! bar as snapshot/resume and WAL replay).

use crate::journal::{new_journal_slot, DurabilityStatus, JournalObserver, SharedJournal};
use crate::metrics::{HubMetrics, Op};
use crate::persist::{checkpoint_behind, spill_file, write_spill_record, SpillRecord};
use activedp::{
    ActiveDpError, Engine, EngineBuilder, EvalReport, RouteChoice, RouteStats, ScenarioSpec,
    SessionConfig, SessionSnapshot, StepOutcome,
};
use adp_data::{DatasetId, DatasetSpec, SharedDataset};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Locks `m`, recovering from poison instead of propagating the panic.
///
/// Every mutex behind this helper guards a registry (datasets, journals,
/// residency slots) whose invariants hold between operations — a panic on
/// one thread mid-operation leaves at worst a stale entry, never a torn
/// one, so the right response to poison is to keep serving, not to turn
/// every subsequent hub call into a panic cascade.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Opaque handle to one session inside a [`SessionHub`].
///
/// Ids are unique for the lifetime of the hub (a monotone counter, never
/// reused after [`SessionHub::close`]) and also encode the shard the
/// session lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw id, e.g. for logging or an external routing table.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from a raw id (spill files and the network
    /// protocol carry raw ids; whether a session answers to it is decided
    /// per call, as always).
    pub fn from_raw(id: u64) -> Self {
        SessionId(id)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Errors surfaced by [`SessionHub`] calls.
#[derive(Debug)]
pub enum ServeError {
    /// No session with that id (never created, or already closed).
    UnknownSession(SessionId),
    /// A restore asked for an id another live session already holds.
    SessionExists(SessionId),
    /// A `step_batch` request with `k = 0`. The engine itself treats an
    /// empty batch as a no-op, but at the service boundary it is always a
    /// caller bug, so the hub rejects it before routing to a shard.
    EmptyBatch,
    /// The session's engine returned an error.
    Engine(ActiveDpError),
    /// A persistence call on a hub with no spill directory (neither
    /// [`SessionHub::with_spill_dir`] nor `ADP_SPILL_DIR`).
    NoSpillDir,
    /// The session cannot be described as a [`ScenarioSpec`] — its dataset
    /// carries no regenerable provenance (a hand-built split), or its
    /// oracle exposes no snapshot state — so there is nothing to spill
    /// that could be restored at load time.
    NotPersistable(SessionId),
    /// A filesystem operation on the spill directory failed.
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A spill file failed to decode (truncated, foreign, or from a newer
    /// format version).
    CorruptSnapshot {
        /// The offending file.
        path: PathBuf,
        /// The codec's typed rejection.
        source: ActiveDpError,
    },
    /// A write-ahead log operation failed (the typed WAL error names the
    /// file and what was wrong with it).
    Wal(adp_wal::WalError),
    /// A journal decoded cleanly but contradicts the session it claims to
    /// belong to — wrong session id, a spec disagreeing with the spill
    /// snapshot, or a checkpoint no snapshot on disk covers.
    CorruptJournal {
        /// The journal directory (or file) involved.
        path: PathBuf,
        /// What was inconsistent.
        reason: String,
    },
    /// The hub is at its memory budget and no resident session can be
    /// evicted to make room (no spill directory, or every resident session
    /// is unevictable) — backpressure, not failure: retry after closing or
    /// evicting something.
    Saturated {
        /// Resident sessions at rejection time.
        resident: usize,
        /// The configured budget.
        cap: usize,
    },
    /// The hub's workers are gone (the hub was dropped mid-call, or a
    /// shard worker died).
    HubClosed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownSession(id) => write!(f, "unknown {id}"),
            ServeError::SessionExists(id) => write!(f, "{id} already exists"),
            ServeError::EmptyBatch => write!(f, "step_batch requires k >= 1"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::NoSpillDir => {
                write!(
                    f,
                    "no spill directory (set ADP_SPILL_DIR or use with_spill_dir)"
                )
            }
            ServeError::NotPersistable(id) => {
                write!(
                    f,
                    "{id} has no scenario to persist (hand-built dataset or stateless oracle)"
                )
            }
            ServeError::Io { path, source } => write!(f, "io on {}: {source}", path.display()),
            ServeError::CorruptSnapshot { path, source } => {
                write!(f, "corrupt snapshot {}: {source}", path.display())
            }
            ServeError::Wal(source) => write!(f, "{source}"),
            ServeError::CorruptJournal { path, reason } => {
                write!(f, "corrupt journal {}: {reason}", path.display())
            }
            ServeError::Saturated { resident, cap } => {
                write!(
                    f,
                    "hub saturated: {resident} resident sessions at budget {cap} and none evictable"
                )
            }
            ServeError::HubClosed => write!(f, "session hub is shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            ServeError::Io { source, .. } => Some(source),
            ServeError::CorruptSnapshot { source, .. } => Some(source),
            ServeError::Wal(source) => Some(source),
            _ => None,
        }
    }
}

impl From<ActiveDpError> for ServeError {
    fn from(e: ActiveDpError) -> Self {
        ServeError::Engine(e)
    }
}

/// Where a session currently stands (see [`SessionHub::status`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionStatus {
    /// Completed loop iterations.
    pub iteration: usize,
    /// LFs collected so far.
    pub n_lfs: usize,
    /// LFs currently selected by LabelPick.
    pub n_selected: usize,
    /// Write-ahead-log durability, for journalled sessions: last
    /// checkpointed iteration, last durable iteration, live segment count.
    /// `None` when the session is not journalled (no spill directory,
    /// unsnapshotable engine, or a degraded journal).
    pub durability: Option<DurabilityStatus>,
    /// The dual-oracle cost ledger — per-oracle query counts and accrued
    /// spend — for sessions routing between a simulated user and a noisy
    /// oracle ([`activedp::OracleKind::Noisy`]); `None` on plain
    /// simulated-user sessions. Answered for hot sessions from the live
    /// router and for cold ones from the spill file's routed block.
    pub route: Option<RouteStats>,
}

/// One shard's liveness and occupancy (see [`SessionHub::health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index (ids route to `id % n_shards`).
    pub shard: usize,
    /// Whether the shard's worker thread is alive and answering.
    pub alive: bool,
    /// Resident sessions on this shard (0 when dead).
    pub resident: usize,
}

/// A point-in-time health report (see [`SessionHub::health`]). Unlike
/// [`SessionHub::session_count`], building it never fails — a dead shard
/// is the report, not an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HubHealth {
    /// Per-shard liveness and occupancy.
    pub shards: Vec<ShardHealth>,
    /// Sessions with an engine in memory.
    pub resident: usize,
    /// Sessions spilled cold, resumable on touch.
    pub cold: usize,
    /// The memory budget, when one is set.
    pub max_resident: Option<usize>,
    /// Evictions since the hub started.
    pub evicted_total: u64,
    /// Cold-session resumes since the hub started.
    pub resumed_total: u64,
}

impl HubHealth {
    /// Whether every shard worker is alive.
    pub fn all_alive(&self) -> bool {
        self.shards.iter().all(|s| s.alive)
    }
}

/// One session's residency bookkeeping in [`HubShared::slots`].
#[derive(Debug, Clone, Copy)]
struct SessionSlot {
    /// Whether the engine is in memory (hot) or spilled (cold).
    resident: bool,
    /// Monotone touch sequence number; the LRU victim is the resident
    /// session with the smallest value.
    last_touch: u64,
    /// Cleared when an eviction attempt finds the session cannot spill
    /// (no snapshot support), so the LRU scan stops proposing it.
    evictable: bool,
}

/// State shared between the hub front end and its shard workers: the
/// residency map the tiering policy reads, the registries the resume path
/// needs (datasets, journals), and the metric surface. Holds **no channel
/// senders**, so workers owning an `Arc` of it never keep each other —
/// or the hub's drop — alive.
pub(crate) struct HubShared {
    /// Where snapshots spill (explicit, else `ADP_SPILL_DIR`, else none).
    spill_dir: Option<PathBuf>,
    /// Resident-session cap; 0 means no budget (never evict).
    max_resident: AtomicUsize,
    /// Source of `last_touch` values.
    touch_seq: AtomicU64,
    /// Every open session, hot or cold, by raw id.
    slots: Mutex<HashMap<u64, SessionSlot>>,
    /// Generated splits by spec, so every session naming the same spec —
    /// including all sessions re-opened by `load_all` — shares one
    /// `SharedDataset` allocation.
    pub(crate) datasets: Mutex<HashMap<(DatasetId, u64, u64), SharedDataset>>,
    /// Each journalled session's journal slot, shared with the
    /// `JournalObserver` registered on its engine (which appends from the
    /// shard thread while the hub checkpoints/inspects from callers).
    pub(crate) journals: Mutex<HashMap<u64, SharedJournal>>,
    /// Counters, gauges and latency histograms for every hub operation.
    pub(crate) metrics: HubMetrics,
}

impl HubShared {
    fn next_touch(&self) -> u64 {
        self.touch_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a fresh (resident) slot; `false` when the id is already
    /// taken by a session, hot or cold.
    fn note_inserted(&self, id: u64) -> bool {
        let mut slots = lock_clean(&self.slots);
        if slots.contains_key(&id) {
            return false;
        }
        slots.insert(
            id,
            SessionSlot {
                resident: true,
                last_touch: self.next_touch(),
                evictable: true,
            },
        );
        self.metrics.resident.inc();
        true
    }

    /// Bumps the session's LRU position.
    fn touch(&self, id: u64) {
        let seq = self.next_touch();
        if let Some(slot) = lock_clean(&self.slots).get_mut(&id) {
            slot.last_touch = seq;
        }
    }

    /// `Some(resident?)` for an open session, `None` for an unknown id.
    fn residency(&self, id: u64) -> Option<bool> {
        lock_clean(&self.slots).get(&id).map(|s| s.resident)
    }

    fn note_evicted(&self, id: u64) {
        if let Some(slot) = lock_clean(&self.slots).get_mut(&id) {
            slot.resident = false;
        }
        self.metrics.resident.dec();
        self.metrics.cold.inc();
        self.metrics.evicted_total.inc();
    }

    fn note_resumed(&self, id: u64) {
        let seq = self.next_touch();
        if let Some(slot) = lock_clean(&self.slots).get_mut(&id) {
            slot.resident = true;
            slot.last_touch = seq;
        }
        self.metrics.cold.dec();
        self.metrics.resident.inc();
        self.metrics.resumed_total.inc();
    }

    fn mark_unevictable(&self, id: u64) {
        if let Some(slot) = lock_clean(&self.slots).get_mut(&id) {
            slot.evictable = false;
        }
    }

    /// Removes the session's slot; `Some(was_resident)` when it existed.
    fn note_closed(&self, id: u64) -> Option<bool> {
        let removed = lock_clean(&self.slots).remove(&id)?;
        if removed.resident {
            self.metrics.resident.dec();
        } else {
            self.metrics.cold.dec();
        }
        Some(removed.resident)
    }

    fn resident_count(&self) -> usize {
        lock_clean(&self.slots)
            .values()
            .filter(|s| s.resident)
            .count()
    }

    fn slot_count(&self) -> usize {
        lock_clean(&self.slots).len()
    }

    fn all_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = lock_clean(&self.slots).keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn ids_where(&self, resident: bool) -> Vec<u64> {
        let mut ids: Vec<u64> = lock_clean(&self.slots)
            .iter()
            .filter(|(_, s)| s.resident == resident)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// The least-recently-touched resident, evictable session outside
    /// `skip`, if any.
    fn lru_victim(&self, skip: &HashSet<u64>) -> Option<u64> {
        lock_clean(&self.slots)
            .iter()
            .filter(|(id, s)| s.resident && s.evictable && !skip.contains(id))
            .min_by_key(|(_, s)| s.last_touch)
            .map(|(&id, _)| id)
    }

    /// The identified session's shared journal slot, if it has one.
    pub(crate) fn journal_slot(&self, id: u64) -> Option<SharedJournal> {
        lock_clean(&self.journals).get(&id).cloned()
    }

    /// The shared split for `spec`, generated once per hub. The cache lock
    /// is *not* held across generation (which can take seconds at paper
    /// scale), so concurrent `open_spec` calls for different specs generate
    /// in parallel; a racing duplicate generation of the same spec is
    /// resolved by keeping the first insert (both copies are
    /// bitwise-identical anyway — generation is deterministic in the spec).
    pub(crate) fn dataset_for(&self, spec: DatasetSpec) -> Result<SharedDataset, ServeError> {
        if let Some(data) = lock_clean(&self.datasets).get(&spec.cache_key()) {
            return Ok(data.clone());
        }
        let data = spec
            .generate()
            .map_err(|e| {
                ServeError::Engine(ActiveDpError::BadConfig {
                    reason: format!("dataset spec failed to generate: {e}"),
                })
            })?
            .into_shared();
        let mut cache = lock_clean(&self.datasets);
        Ok(cache.entry(spec.cache_key()).or_insert(data).clone())
    }
}

/// One request to a shard worker. Every variant carries its own reply
/// channel, so concurrent callers never contend on a shared reply path.
enum Command {
    Insert {
        id: u64,
        engine: Box<Engine>,
        /// `Err` hands the engine back when the id is already live, so the
        /// caller can retry under another id without rebuilding it.
        reply: Sender<Result<(), Box<Engine>>>,
    },
    Snapshot {
        id: u64,
        reply: Sender<Result<SessionSnapshot, ServeError>>,
    },
    Status {
        id: u64,
        reply: Sender<Result<SessionStatus, ServeError>>,
    },
    Step {
        id: u64,
        reply: Sender<Result<StepOutcome, ServeError>>,
    },
    StepBatch {
        id: u64,
        k: usize,
        reply: Sender<Result<Vec<StepOutcome>, ServeError>>,
    },
    Run {
        id: u64,
        iterations: usize,
        reply: Sender<Result<(), ServeError>>,
    },
    Evaluate {
        id: u64,
        reply: Sender<Result<EvalReport, ServeError>>,
    },
    Evict {
        id: u64,
        reply: Sender<Result<bool, ServeError>>,
    },
    Close {
        id: u64,
        reply: Sender<Result<(), ServeError>>,
    },
    Count {
        reply: Sender<usize>,
    },
}

/// Where one [`SessionHub::run_cell`] call starts from: a fresh spec, or
/// a checkpoint a previous slice (possibly on another worker) shipped
/// back.
#[derive(Debug, Clone)]
pub enum CellStart {
    /// Build the cell's engine from scratch (boxed to keep the enum
    /// slim — clippy's large-variant lint).
    Spec(Box<ScenarioSpec>),
    /// Resume the cell from a boundary snapshot; the dataset regenerates
    /// (or is served from cache) from the provenance the snapshot embeds.
    /// Boxed: a snapshot dwarfs a spec.
    Resume(Box<SessionSnapshot>),
}

/// A finished sweep cell as computed by [`SessionHub::run_cell`] — the
/// same quantities the local sweep's `SweepRow` carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellResult {
    /// Loop iterations consumed (≤ budget when the pool ran dry).
    pub iterations: usize,
    /// Refit batches the consumed iterations span (absolute boundaries,
    /// so this is independent of how the cell was sliced).
    pub refits: usize,
    /// Final downstream test accuracy.
    pub test_accuracy: f64,
    /// This slice's wall clock, milliseconds (dataset generation
    /// excluded). For a sliced cell the coordinator sums slice walls.
    pub wall_ms: f64,
    /// Fraction of routed queries the cheap oracle answered; 0 for plain
    /// simulated sessions. Survives slicing — the route ledger rides the
    /// checkpoint snapshot.
    pub cheap_fraction: f64,
    /// Total routed labelling cost across both oracles; 0 for simulated
    /// sessions. Also slice-invariant.
    pub routed_cost: f64,
    /// Post-drift accuracy recovery (final minus at-boundary accuracy).
    /// Measured only by *uncapped* cells: a sliced cell cannot carry the
    /// boundary evaluation across workers, so capped slices report 0.
    pub recovery: f64,
}

/// What one [`SessionHub::run_cell`] slice produced.
#[derive(Debug, Clone)]
pub enum CellProgress {
    /// The cell ran to completion (budget spent or pool exhausted) and
    /// was evaluated.
    Done(CellResult),
    /// The batch cap stopped the slice first; the checkpoint resumes the
    /// cell on any worker.
    Partial {
        /// Iterations consumed so far.
        iteration: usize,
        /// This slice's wall clock, milliseconds.
        wall_ms: f64,
        /// Boundary snapshot to resume from (boxed: it dwarfs the other
        /// variant).
        snapshot: Box<SessionSnapshot>,
    },
}

/// A registry of concurrent labelling sessions, sharded over worker
/// threads.
///
/// Sessions are owned by their shard's worker; the hub routes each call to
/// the right shard (`id % n_shards`) and blocks on the reply. Calls for
/// *different* sessions on different shards run in parallel; calls for
/// sessions on the same shard serialise in arrival order — within one
/// session that is exactly the engine's own sequential semantics, so
/// per-session trajectories are deterministic regardless of hub load.
///
/// With a memory budget set, the hub additionally keeps only the
/// `max_resident` most-recently-touched sessions hot; the rest are spilled
/// cold and resume transparently on their next touch (see the module
/// docs). Without a budget — the default — nothing is ever evicted and the
/// hub behaves exactly as before.
pub struct SessionHub {
    shards: Vec<Sender<Command>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    pub(crate) shared: Arc<HubShared>,
}

impl SessionHub {
    /// A hub with `n_shards` worker threads (at least one). Snapshots spill
    /// to `ADP_SPILL_DIR` when that variable is set; use
    /// [`SessionHub::with_spill_dir`] to pick the directory explicitly. A
    /// memory budget is taken from `ADP_MAX_RESIDENT` when set (and
    /// parseable); use [`SessionHub::with_memory_budget`] to pick it
    /// explicitly.
    pub fn new(n_shards: usize) -> Self {
        let spill = std::env::var_os("ADP_SPILL_DIR").map(PathBuf::from);
        let hub = Self::with_shards_and_spill(n_shards, spill);
        if let Some(cap) = std::env::var("ADP_MAX_RESIDENT")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            hub.set_memory_budget(Some(cap));
        }
        hub
    }

    /// A hub whose [`SessionHub::save_all`]/[`SessionHub::load_all`] use
    /// `spill_dir` (created on first save).
    pub fn with_spill_dir(n_shards: usize, spill_dir: impl Into<PathBuf>) -> Self {
        Self::with_shards_and_spill(n_shards, Some(spill_dir.into()))
    }

    /// A hub with **no** spill directory, regardless of `ADP_SPILL_DIR`:
    /// sessions are purely in-memory, snapshot/save requests report the
    /// missing directory, and a memory budget can only refuse admissions
    /// (nothing is evictable without somewhere to spill).
    pub fn in_memory(n_shards: usize) -> Self {
        Self::with_shards_and_spill(n_shards, None)
    }

    pub(crate) fn with_shards_and_spill(n_shards: usize, spill_dir: Option<PathBuf>) -> Self {
        let n = n_shards.max(1);
        let shared = Arc::new(HubShared {
            spill_dir,
            max_resident: AtomicUsize::new(0),
            touch_seq: AtomicU64::new(0),
            slots: Mutex::new(HashMap::new()),
            datasets: Mutex::new(HashMap::new()),
            journals: Mutex::new(HashMap::new()),
            metrics: HubMetrics::new(),
        });
        let mut shards = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for k in 0..n {
            let (tx, rx) = channel();
            shards.push(tx);
            let shared = shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("adp-serve-shard-{k}"))
                    .spawn(move || shard_worker(rx, shared))
                    .expect("shard worker spawns"),
            );
        }
        SessionHub {
            shards,
            workers,
            next_id: AtomicU64::new(0),
            shared,
        }
    }

    /// Caps resident sessions at `max_resident` (clamped to at least 1):
    /// once more sessions than that are hot, the least-recently-touched
    /// are evicted to their spill files. Builder-style; see also
    /// [`SessionHub::set_memory_budget`].
    pub fn with_memory_budget(self, max_resident: usize) -> Self {
        self.set_memory_budget(Some(max_resident));
        self
    }

    /// Sets (or with `None` clears) the resident-session budget at
    /// runtime. A budget of 0 is clamped to 1 — a hub that could hold
    /// nothing hot could never run anything.
    pub fn set_memory_budget(&self, max_resident: Option<usize>) {
        let cap = max_resident.map_or(0, |c| c.max(1));
        self.shared.max_resident.store(cap, Ordering::Relaxed);
        self.enforce_budget();
    }

    /// The resident-session budget, when one is set.
    pub fn memory_budget(&self) -> Option<usize> {
        match self.shared.max_resident.load(Ordering::Relaxed) {
            0 => None,
            cap => Some(cap),
        }
    }

    /// Number of shard workers.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The directory snapshots spill to, when one is configured.
    pub fn spill_dir(&self) -> Option<&std::path::Path> {
        self.shared.spill_dir.as_deref()
    }

    /// The hub's metric surface (counters, gauges, latency histograms) —
    /// render with [`HubMetrics::render`] for a Prometheus scrape.
    pub fn metrics(&self) -> &HubMetrics {
        &self.shared.metrics
    }

    /// Times `f` into the per-operation histogram.
    fn timed<T>(&self, op: Op, f: impl FnOnce() -> Result<T, ServeError>) -> Result<T, ServeError> {
        let start = Instant::now();
        let out = f();
        self.shared
            .metrics
            .record(op, start.elapsed(), out.is_err());
        out
    }

    /// Registers a ready-built engine and returns its session id.
    ///
    /// Persistence follows the engine: sessions whose engine can describe
    /// itself as a [`ScenarioSpec`] (see `Engine::scenario`) spill and
    /// reload normally; engines over hand-built, provenance-less datasets
    /// serve fine but are skipped by [`SessionHub::save_all`].
    ///
    /// When the hub has a spill directory, every snapshotable session is
    /// additionally **journalled by default**: its per-step events stream
    /// into a write-ahead log under `wal-<id>/`, making the session
    /// recoverable to its last committed iteration after a crash — and to
    /// any earlier commit point via [`SessionHub::recover`].
    ///
    /// Under a memory budget, a create that cannot be absorbed — the hub
    /// is at the cap and nothing resident can be evicted — is rejected
    /// with [`ServeError::Saturated`] before any id is allocated.
    pub fn create(&self, engine: Engine) -> Result<SessionId, ServeError> {
        self.timed(Op::Open, || self.create_inner(engine))
    }

    fn create_inner(&self, engine: Engine) -> Result<SessionId, ServeError> {
        self.admit()?;
        // Decide journalability before the engine is moved: exactly the
        // sessions that can snapshot can journal (the snapshot doubles as
        // the journal's checkpoint description).
        let journal_base = match self.spill_dir() {
            None => None,
            Some(_) => match engine.snapshot() {
                Ok(snapshot) => Some(snapshot),
                Err(ActiveDpError::SnapshotUnsupported { .. }) => None,
                Err(e) => return Err(ServeError::Engine(e)),
            },
        };
        let mut engine = engine;
        let slot = journal_base.as_ref().map(|_| new_journal_slot());
        if let Some(slot) = &slot {
            // Armed only after the id — and therefore the journal
            // directory — is known; the engine cannot step before `create`
            // returns the id to anyone, so no event outruns the journal.
            engine.add_observer(JournalObserver::new(slot.clone()));
        }
        let mut engine = Box::new(engine);
        let id = loop {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            match self.try_insert(id, engine)? {
                Ok(()) => break SessionId(id),
                // A concurrent `load_all` restored this very id before its
                // allocator bump landed; that id belongs to the restored
                // session, so take the engine back and allocate a fresh one.
                Err(returned) => engine = returned,
            }
        };
        if let (Some(snapshot), Some(slot)) = (journal_base, slot) {
            if let Err(e) = self.init_journal(id, snapshot, &slot) {
                // The caller asked for a durable hub and the journal could
                // not be established — fail the create rather than serve a
                // session that silently is not durable.
                let _ = self.close(id);
                return Err(e);
            }
        }
        self.enforce_budget();
        Ok(id)
    }

    /// Admission control: under a budget, a create is rejected when the
    /// hub is at the cap and eviction cannot make room (no spill
    /// directory, or every resident session is unevictable). When an
    /// eviction *can* absorb the new session, the create is admitted and
    /// `enforce_budget` spills the LRU victim right after the insert.
    fn admit(&self) -> Result<(), ServeError> {
        let Some(cap) = self.memory_budget() else {
            return Ok(());
        };
        let resident = self.shared.resident_count();
        if resident < cap {
            return Ok(());
        }
        if self.spill_dir().is_some() && self.shared.lru_victim(&HashSet::new()).is_some() {
            return Ok(());
        }
        self.shared.metrics.saturated_total.inc();
        Err(ServeError::Saturated { resident, cap })
    }

    /// Evicts least-recently-touched sessions until the resident count is
    /// back inside the budget. Victims that turn out unevictable are
    /// marked and skipped, so the loop always terminates.
    fn enforce_budget(&self) {
        let Some(cap) = self.memory_budget() else {
            return;
        };
        let mut skip = HashSet::new();
        while self.shared.resident_count() > cap {
            let Some(victim) = self.shared.lru_victim(&skip) else {
                break;
            };
            match self.evict(SessionId(victim)) {
                Ok(true) => {}
                // Unevictable, already cold, or the spill failed — do not
                // retry it this sweep.
                Ok(false) | Err(_) => {
                    skip.insert(victim);
                }
            }
        }
    }

    /// Spills the identified session cold: snapshot → spill file → WAL
    /// checkpoint → engine dropped. Returns `Ok(true)` when the session
    /// went cold, `Ok(false)` when it already was — or cannot be evicted
    /// (no spill directory, or its engine cannot snapshot; such sessions
    /// are marked and the LRU policy leaves them alone). The session stays
    /// fully serviceable either way: its next touch resumes it in place,
    /// on the exact trajectory it would have had uninterrupted.
    pub fn evict(&self, id: SessionId) -> Result<bool, ServeError> {
        self.call(id.0, |reply| Command::Evict { id: id.0, reply })?
    }

    /// Builds the engine from `builder` and registers it — the one-call
    /// path from dataset to served session. Build errors (invalid config)
    /// surface before any id is allocated.
    pub fn open(&self, builder: EngineBuilder) -> Result<SessionId, ServeError> {
        self.create(builder.build()?)
    }

    /// Builds and registers the session a [`ScenarioSpec`] describes — the
    /// declarative path from one serializable run description to a served
    /// session (the network front end's `create_spec` request lands here).
    /// The split is generated once per distinct dataset spec and shared
    /// between all sessions naming it; the engine routes through
    /// `Engine::from_spec_over`, so the hub cannot drift from the solo
    /// constructor. Invalid specs (bad config ranges, degenerate schedules
    /// like `FixedBatch{k: 0}`, an ungeneratable dataset) fail here, before
    /// any id is allocated.
    pub fn create_from_spec(&self, spec: ScenarioSpec) -> Result<SessionId, ServeError> {
        spec.validate().map_err(ServeError::Engine)?;
        let data = self.dataset_for(spec.dataset)?;
        self.create(Engine::from_spec_over(spec, data)?)
    }

    /// Generates (or re-uses) the split named by `spec` and opens a session
    /// over it with `config` — sugar for [`SessionHub::create_from_spec`]
    /// with the default schedule and budget; the session persists across
    /// restarts like any spec-described session.
    pub fn open_spec(
        &self,
        spec: DatasetSpec,
        config: SessionConfig,
    ) -> Result<SessionId, ServeError> {
        self.create_from_spec(ScenarioSpec {
            session: config,
            ..ScenarioSpec::new(spec)
        })
    }

    /// Resumes a snapshot over an explicitly supplied dataset under a
    /// fresh id (the cache-bypassing sibling of the `load_all` path; the
    /// split must match the provenance recorded in the snapshot's spec).
    pub fn restore(
        &self,
        data: SharedDataset,
        snapshot: SessionSnapshot,
    ) -> Result<SessionId, ServeError> {
        let engine = Engine::builder(data).resume(snapshot)?;
        self.create(engine)
    }

    /// Runs one sweep cell (or a bounded slice of one) to serve the
    /// `run_spec` protocol command — the distributed sweep's unit of work.
    ///
    /// The engine is **ephemeral**: built fresh from the spec (or resumed
    /// from a shipped checkpoint), run for at most `max_batches` schedule
    /// batches on the *calling* thread, and dropped when the call returns.
    /// No session id is allocated and no shard worker is involved — cells
    /// carry their whole state in the request/response, which is what
    /// makes a dead worker rescheduable: the coordinator holds the last
    /// returned checkpoint and replays it on any other worker. Only the
    /// dataset split is shared, through the hub's generate-once cache.
    ///
    /// Slicing is bitwise-invisible (schedule batch boundaries are
    /// absolute): any partition of a cell into `run_cell` calls — across
    /// any mix of workers — produces the same iterations/refits/accuracy
    /// as one uninterrupted local run.
    pub fn run_cell(
        &self,
        start: CellStart,
        max_batches: Option<usize>,
    ) -> Result<CellProgress, ServeError> {
        self.timed(Op::RunSpec, || {
            let mut engine = match start {
                CellStart::Spec(spec) => {
                    spec.validate().map_err(ServeError::Engine)?;
                    let data = self.shared.dataset_for(spec.dataset)?;
                    Engine::from_spec_over(*spec, data)?
                }
                CellStart::Resume(snapshot) => {
                    let data = self.shared.dataset_for(snapshot.spec.dataset)?;
                    Engine::builder(data).resume(*snapshot)?
                }
            };
            // The clock starts after dataset generation, matching the
            // local sweep's convention (the artefact times the loop).
            let wall = Instant::now();
            // An uncapped cell pauses at the drift boundary to capture
            // the recovery baseline, exactly like the local sweep; the
            // boundary is a batch boundary (validated), so the paused
            // trajectory is bitwise the uninterrupted one.
            let boundary = engine.drift().boundary().filter(|&at| at < engine.budget());
            let boundary_accuracy = match (max_batches, boundary) {
                // `n_batches(at)` counts from iteration zero, so only a
                // fresh engine can pause there; a resumed uncapped cell
                // may already be past the boundary.
                (None, Some(at)) if engine.state().iteration == 0 => {
                    let n = engine.schedule().n_batches(at);
                    engine.run_schedule_batches(n)?;
                    Some(engine.evaluate_downstream()?.test_accuracy)
                }
                _ => None,
            };
            let run = engine.run_schedule_batches(max_batches.unwrap_or(usize::MAX))?;
            let metrics = &self.shared.metrics;
            if !run.done {
                let snapshot = engine.snapshot()?;
                metrics.sweep_cell_latency.observe(wall.elapsed());
                return Ok(CellProgress::Partial {
                    iteration: engine.state().iteration,
                    wall_ms: wall.elapsed().as_secs_f64() * 1e3,
                    snapshot: Box::new(snapshot),
                });
            }
            let report = engine.evaluate_downstream()?;
            let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
            let iterations = engine.state().iteration;
            // Boundaries are absolute, so the batches covering the
            // consumed iterations are exactly the batches that ran —
            // whether this worker ran them all or only the tail.
            let refits = engine.schedule().batch_sizes(iterations).len();
            metrics.sweep_cells_total.inc();
            metrics.sweep_cell_latency.observe(wall.elapsed());
            let stats = engine.route_stats();
            Ok(CellProgress::Done(CellResult {
                iterations,
                refits,
                test_accuracy: report.test_accuracy,
                wall_ms,
                cheap_fraction: stats.map_or(0.0, |s| s.cheap_fraction()),
                routed_cost: stats.map_or(0.0, |s| s.total_cost()),
                recovery: boundary_accuracy.map_or(0.0, |a| report.test_accuracy - a),
            }))
        })
    }

    /// Captures the identified session's [`SessionSnapshot`] (the session
    /// keeps running; snapshots are read-only). A cold session is resumed
    /// first — this is a touch like any other engine operation.
    pub fn snapshot(&self, id: SessionId) -> Result<SessionSnapshot, ServeError> {
        let out = self.call(id.0, |reply| Command::Snapshot { id: id.0, reply })?;
        self.enforce_budget();
        out
    }

    /// Cheap progress probe for the identified session (the network
    /// front end's `open` verb — a reconnecting client learns where its
    /// session left off without pulling a full snapshot). A pure probe:
    /// a cold session answers from its spill file without being resumed,
    /// and no LRU position changes.
    pub fn status(&self, id: SessionId) -> Result<SessionStatus, ServeError> {
        self.timed(Op::Open, || {
            let mut status = self.call(id.0, |reply| Command::Status { id: id.0, reply })??;
            status.durability = self.durability(id.0);
            Ok(status)
        })
    }

    /// Ids of every open session — resident or cold — ascending.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.shared.all_ids().into_iter().map(SessionId).collect()
    }

    /// Ids of the sessions currently hot (engine in memory), ascending.
    pub fn resident_ids(&self) -> Vec<SessionId> {
        self.shared
            .ids_where(true)
            .into_iter()
            .map(SessionId)
            .collect()
    }

    /// Ids of the sessions currently cold (spilled, resumable), ascending.
    pub fn cold_ids(&self) -> Vec<SessionId> {
        self.shared
            .ids_where(false)
            .into_iter()
            .map(SessionId)
            .collect()
    }

    /// Registers `engine` under a *specific* id (the `load_all` path, which
    /// preserves ids across restarts so client handles stay valid). Bumps
    /// the id allocator past `id` and rejects collisions with live
    /// sessions.
    pub(crate) fn insert_preserving_id(&self, id: u64, engine: Engine) -> Result<(), ServeError> {
        // `id` comes from a spill file, i.e. from disk: saturate instead of
        // computing `id + 1` so a tampered file carrying u64::MAX cannot
        // panic (dev) or wrap the allocator to 0 (release). The persist
        // layer additionally rejects that id as corrupt before calling in.
        self.next_id
            .fetch_max(id.saturating_add(1), Ordering::Relaxed);
        match self.try_insert(id, Box::new(engine))? {
            Ok(()) => Ok(()),
            Err(_) => Err(ServeError::SessionExists(SessionId(id))),
        }
    }

    pub(crate) fn dataset_for(&self, spec: DatasetSpec) -> Result<SharedDataset, ServeError> {
        self.shared.dataset_for(spec)
    }

    /// Routes an insert to `id`'s shard; the inner `Err` returns the
    /// engine when the id is already occupied.
    fn try_insert(
        &self,
        id: u64,
        engine: Box<Engine>,
    ) -> Result<Result<(), Box<Engine>>, ServeError> {
        self.call(id, |reply| Command::Insert { id, engine, reply })
    }

    /// One training iteration of the identified session.
    pub fn step(&self, id: SessionId) -> Result<StepOutcome, ServeError> {
        let out = self.timed(Op::Step, || {
            self.call(id.0, |reply| Command::Step { id: id.0, reply })?
        });
        if let Ok(outcome) = &out {
            self.note_route(outcome.route);
        }
        self.enforce_budget();
        out
    }

    /// Bumps the routed-query counter matching one step outcome's route.
    fn note_route(&self, route: Option<RouteChoice>) {
        let metrics = &self.shared.metrics;
        match route {
            Some(RouteChoice::Cheap) => metrics.routed_cheap_total.inc(),
            Some(RouteChoice::Expensive) => metrics.routed_expensive_total.inc(),
            Some(RouteChoice::Escalated) => metrics.routed_escalated_total.inc(),
            None => {}
        }
    }

    /// Batched stepping: up to `k` queries, one refit (see
    /// `Engine::step_batch`). `k = 0` is rejected with
    /// [`ServeError::EmptyBatch`] without touching the session.
    pub fn step_batch(&self, id: SessionId, k: usize) -> Result<Vec<StepOutcome>, ServeError> {
        if k == 0 {
            return Err(ServeError::EmptyBatch);
        }
        let out = self.timed(Op::StepBatch, || {
            self.call(id.0, |reply| Command::StepBatch { id: id.0, k, reply })?
        });
        if let Ok(outcomes) = &out {
            for outcome in outcomes {
                self.note_route(outcome.route);
            }
        }
        self.enforce_budget();
        out
    }

    /// Runs `iterations` single steps on the identified session.
    pub fn run(&self, id: SessionId, iterations: usize) -> Result<(), ServeError> {
        let out = self.call(id.0, |reply| Command::Run {
            id: id.0,
            iterations,
            reply,
        })?;
        self.enforce_budget();
        out
    }

    /// Inference-phase evaluation of the identified session.
    pub fn evaluate(&self, id: SessionId) -> Result<EvalReport, ServeError> {
        let out = self.timed(Op::Evaluate, || {
            self.call(id.0, |reply| Command::Evaluate { id: id.0, reply })?
        });
        self.enforce_budget();
        out
    }

    /// Drops the identified session, freeing its engine (a closed session
    /// is not re-saved). Closing a cold session just forgets it — nothing
    /// is resumed. Its journal handle is released too; the journal *files*
    /// stay on disk, so the session remains recoverable (and is reloaded
    /// by a later [`SessionHub::load_all`]) until the operator removes
    /// them.
    pub fn close(&self, id: SessionId) -> Result<(), ServeError> {
        let result: Result<(), ServeError> =
            self.call(id.0, |reply| Command::Close { id: id.0, reply })?;
        if result.is_ok() {
            lock_clean(&self.shared.journals).remove(&id.0);
        }
        result
    }

    /// Number of open sessions (resident plus cold). A dead shard worker
    /// is surfaced as [`ServeError::HubClosed`] instead of silently
    /// undercounting; [`SessionHub::health`] says *which* shard died.
    pub fn session_count(&self) -> Result<usize, ServeError> {
        // Ping every shard: the count itself comes from the residency map,
        // but a hub with a dead worker must not pretend to know it.
        for shard in &self.shards {
            let (reply, rx) = channel();
            shard
                .send(Command::Count { reply })
                .map_err(|_| ServeError::HubClosed)?;
            rx.recv().map_err(|_| ServeError::HubClosed)?;
        }
        Ok(self.shared.slot_count())
    }

    /// A point-in-time health report: per-shard liveness and occupancy,
    /// residency totals and tiering counters. Never fails — a dead shard
    /// shows up as `alive: false`, which is exactly what a health endpoint
    /// is for.
    pub fn health(&self) -> HubHealth {
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(k, shard)| {
                let (reply, rx) = channel();
                let resident = if shard.send(Command::Count { reply }).is_ok() {
                    rx.recv().ok()
                } else {
                    None
                };
                ShardHealth {
                    shard: k,
                    alive: resident.is_some(),
                    resident: resident.unwrap_or(0),
                }
            })
            .collect();
        let resident = self.shared.resident_count();
        HubHealth {
            shards,
            resident,
            cold: self.shared.slot_count().saturating_sub(resident),
            max_resident: self.memory_budget(),
            evicted_total: self.shared.metrics.evicted_total.get(),
            resumed_total: self.shared.metrics.resumed_total.get(),
        }
    }

    /// Routes one command to the owning shard and blocks on its reply.
    fn call<T>(&self, id: u64, make: impl FnOnce(Sender<T>) -> Command) -> Result<T, ServeError> {
        let shard = &self.shards[(id as usize) % self.shards.len()];
        let (reply, rx) = channel();
        shard.send(make(reply)).map_err(|_| ServeError::HubClosed)?;
        rx.recv().map_err(|_| ServeError::HubClosed)
    }
}

impl Drop for SessionHub {
    fn drop(&mut self) {
        // Closing the senders ends each worker's receive loop; join so no
        // worker outlives the hub. (Workers hold only `Arc<HubShared>`,
        // which has no senders in it, so this cannot cycle.)
        self.shards.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One shard worker's state: the engines it owns plus the shared hub
/// state the tiering policy lives in.
struct ShardState {
    sessions: HashMap<u64, Engine>,
    shared: Arc<HubShared>,
}

impl ShardState {
    /// Runs `f` over the session's engine, resuming it from its spill
    /// file first when it is cold — the transparent-resume path. Bumps
    /// the session's LRU position.
    fn touch<T>(
        &mut self,
        id: u64,
        f: impl FnOnce(&mut Engine) -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        if !self.sessions.contains_key(&id) {
            match self.shared.residency(id) {
                Some(false) => {
                    let start = Instant::now();
                    let resumed = self.resume_session(id);
                    self.shared
                        .metrics
                        .record(Op::Resume, start.elapsed(), resumed.is_err());
                    let engine = resumed?;
                    self.sessions.insert(id, engine);
                    self.shared.note_resumed(id);
                }
                // `Some(true)` cannot happen — a resident slot's engine
                // lives in this very map (same id, same shard) — but a
                // defensive UnknownSession beats a panic on the worker.
                Some(true) | None => return Err(ServeError::UnknownSession(SessionId(id))),
            }
        }
        self.shared.touch(id);
        f(self.sessions.get_mut(&id).expect("engine just ensured"))
    }

    /// Rebuilds a cold session's engine from its spill file and re-arms
    /// its journal observer. The spill is written at eviction time and the
    /// session cannot step while cold, so the file is always current.
    fn resume_session(&self, id: u64) -> Result<Engine, ServeError> {
        let dir = self
            .shared
            .spill_dir
            .clone()
            .ok_or(ServeError::NoSpillDir)?;
        let path = spill_file(&dir, id);
        let bytes = std::fs::read(&path).map_err(|source| ServeError::Io {
            path: path.clone(),
            source,
        })?;
        let record =
            SpillRecord::from_bytes(&bytes).map_err(|source| ServeError::CorruptSnapshot {
                path: path.clone(),
                source,
            })?;
        if record.session != id {
            return Err(ServeError::CorruptSnapshot {
                path,
                source: ActiveDpError::BadConfig {
                    reason: format!("spill file records session {}", record.session),
                },
            });
        }
        let data = self.shared.dataset_for(record.spec)?;
        let mut engine = Engine::builder(data)
            .resume(record.snapshot)
            .map_err(|source| ServeError::CorruptSnapshot { path, source })?;
        // The journal stayed live (and checkpointed) across the eviction;
        // re-arm the observer so post-resume steps keep appending to it.
        if let Some(slot) = self.shared.journal_slot(id) {
            engine.add_observer(JournalObserver::new(slot));
        }
        Ok(engine)
    }

    /// Spills a resident session cold; see [`SessionHub::evict`].
    fn evict_session(&mut self, id: u64) -> Result<bool, ServeError> {
        let Some(engine) = self.sessions.get(&id) else {
            return match self.shared.residency(id) {
                // Already cold: nothing to do, not an error.
                Some(_) => Ok(false),
                None => Err(ServeError::UnknownSession(SessionId(id))),
            };
        };
        let Some(dir) = self.shared.spill_dir.clone() else {
            self.shared.mark_unevictable(id);
            return Ok(false);
        };
        let snapshot = match engine.snapshot() {
            Ok(snapshot) => snapshot,
            Err(ActiveDpError::SnapshotUnsupported { .. }) => {
                self.shared.mark_unevictable(id);
                return Ok(false);
            }
            Err(e) => return Err(ServeError::Engine(e)),
        };
        let iteration = snapshot.state.iteration;
        write_spill_record(&dir, id, snapshot)?;
        // Same discipline as `save`: snapshot on disk first, checkpoint
        // second, so a crash between the two leaves the snapshot *ahead*
        // of the checkpoint — recovery just skips the covered events.
        if let Some(slot) = self.shared.journal_slot(id) {
            checkpoint_behind(&slot, iteration)?;
        }
        self.sessions.remove(&id);
        self.shared.note_evicted(id);
        Ok(true)
    }

    /// Status without residency side effects: a hot session answers from
    /// its engine, a cold one from its spill file — no resume, no touch.
    fn probe_status(&mut self, id: u64) -> Result<SessionStatus, ServeError> {
        if let Some(engine) = self.sessions.get(&id) {
            return Ok(SessionStatus {
                iteration: engine.state().iteration,
                n_lfs: engine.state().lfs.len(),
                n_selected: engine.state().selected.len(),
                // The shard worker has no view of the journal registry;
                // the hub fills this in on the way out.
                durability: None,
                route: engine.route_stats(),
            });
        }
        if self.shared.residency(id).is_none() {
            return Err(ServeError::UnknownSession(SessionId(id)));
        }
        let dir = self
            .shared
            .spill_dir
            .clone()
            .ok_or(ServeError::NoSpillDir)?;
        let path = spill_file(&dir, id);
        let bytes = std::fs::read(&path).map_err(|source| ServeError::Io {
            path: path.clone(),
            source,
        })?;
        let record = SpillRecord::from_bytes(&bytes)
            .map_err(|source| ServeError::CorruptSnapshot { path, source })?;
        Ok(SessionStatus {
            iteration: record.snapshot.state.iteration,
            n_lfs: record.snapshot.state.lfs.len(),
            n_selected: record.snapshot.state.selected.len(),
            durability: None,
            route: record.snapshot.routed.as_ref().map(|r| r.stats),
        })
    }
}

fn shard_worker(rx: Receiver<Command>, shared: Arc<HubShared>) {
    let mut state = ShardState {
        sessions: HashMap::new(),
        shared,
    };
    // Replies may fail only when the caller gave up (hub dropped mid-call);
    // the worker just moves on.
    for command in rx {
        match command {
            Command::Insert { id, engine, reply } => {
                let _ = reply.send(if state.shared.note_inserted(id) {
                    state.sessions.insert(id, *engine);
                    Ok(())
                } else {
                    Err(engine)
                });
            }
            Command::Snapshot { id, reply } => {
                let _ = reply.send(state.touch(id, |e| e.snapshot().map_err(ServeError::Engine)));
            }
            Command::Status { id, reply } => {
                let _ = reply.send(state.probe_status(id));
            }
            Command::Step { id, reply } => {
                let _ = reply.send(state.touch(id, |e| e.step().map_err(ServeError::Engine)));
            }
            Command::StepBatch { id, k, reply } => {
                let _ =
                    reply.send(state.touch(id, |e| e.step_batch(k).map_err(ServeError::Engine)));
            }
            Command::Run {
                id,
                iterations,
                reply,
            } => {
                let _ =
                    reply.send(state.touch(id, |e| e.run(iterations).map_err(ServeError::Engine)));
            }
            Command::Evaluate { id, reply } => {
                let _ = reply
                    .send(state.touch(id, |e| e.evaluate_downstream().map_err(ServeError::Engine)));
            }
            Command::Evict { id, reply } => {
                let start = Instant::now();
                let result = state.evict_session(id);
                state
                    .shared
                    .metrics
                    .record(Op::Evict, start.elapsed(), result.is_err());
                let _ = reply.send(result);
            }
            Command::Close { id, reply } => {
                let existed = state.sessions.remove(&id).is_some();
                let _ = reply.send(match state.shared.note_closed(id) {
                    Some(_) => Ok(()),
                    None => {
                        debug_assert!(!existed, "engine without a residency slot");
                        Err(ServeError::UnknownSession(SessionId(id)))
                    }
                });
            }
            Command::Count { reply } => {
                let _ = reply.send(state.sessions.len());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{generate, DatasetId, Scale, SharedDataset};

    fn tiny() -> SharedDataset {
        generate(DatasetId::Youtube, Scale::Tiny, 7)
            .unwrap()
            .into_shared()
    }

    fn engine(data: &SharedDataset, seed: u64) -> Engine {
        Engine::builder(data.clone()).seed(seed).build().unwrap()
    }

    fn unique_tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "adp-hub-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The trajectory fingerprint compared between hub and solo runs.
    fn fingerprint(outcomes: &[StepOutcome], report: &EvalReport) -> (Vec<Option<usize>>, u64) {
        (
            outcomes.iter().map(|o| o.query).collect(),
            report.test_accuracy.to_bits(),
        )
    }

    #[test]
    fn create_step_evaluate_close_roundtrip() {
        let hub = SessionHub::new(2);
        let id = hub.create(engine(&tiny(), 1)).unwrap();
        let out = hub.step(id).unwrap();
        assert_eq!(out.iteration, 1);
        hub.run(id, 4).unwrap();
        let report = hub.evaluate(id).unwrap();
        assert!((0.0..=1.0).contains(&report.test_accuracy));
        assert_eq!(hub.session_count().unwrap(), 1);
        hub.close(id).unwrap();
        assert_eq!(hub.session_count().unwrap(), 0);
        assert!(matches!(hub.step(id), Err(ServeError::UnknownSession(_))));
    }

    #[test]
    fn open_builds_and_registers() {
        let hub = SessionHub::new(1);
        let id = hub.open(Engine::builder(tiny()).seed(3)).unwrap();
        assert_eq!(hub.step(id).unwrap().iteration, 1);
        // Build errors surface synchronously, no id leaked.
        let err = hub.open(Engine::builder(tiny()).alpha(7.0));
        assert!(matches!(err, Err(ServeError::Engine(_))));
        assert_eq!(hub.session_count().unwrap(), 1);
    }

    #[test]
    fn step_batch_routes_through_the_hub() {
        let hub = SessionHub::new(2);
        let id = hub.create(engine(&tiny(), 2)).unwrap();
        let outcomes = hub.step_batch(id, 5).unwrap();
        assert_eq!(outcomes.len(), 5);
        assert_eq!(outcomes.last().unwrap().iteration, 5);
    }

    #[test]
    fn ids_spread_across_shards() {
        let hub = SessionHub::new(3);
        let data = tiny();
        for seed in 0..6 {
            hub.create(engine(&data, seed)).unwrap();
        }
        assert_eq!(hub.session_count().unwrap(), 6);
        assert_eq!(hub.n_shards(), 3);
    }

    #[test]
    fn concurrent_sessions_match_solo_trajectories() {
        // The acceptance bar: ≥ 8 sessions stepped concurrently through
        // the hub reproduce their solo trajectories bit for bit.
        const SESSIONS: u64 = 8;
        const ITERS: usize = 10;
        let data = tiny();

        let solo: Vec<_> = (0..SESSIONS)
            .map(|seed| {
                let mut e = engine(&data, seed);
                let outcomes: Vec<StepOutcome> = (0..ITERS).map(|_| e.step().unwrap()).collect();
                let report = e.evaluate_downstream().unwrap();
                fingerprint(&outcomes, &report)
            })
            .collect();

        let hub = SessionHub::new(4);
        let ids: Vec<SessionId> = (0..SESSIONS)
            .map(|seed| hub.create(engine(&data, seed)).unwrap())
            .collect();
        let hubbed: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = ids
                .iter()
                .map(|&id| {
                    let hub = &hub;
                    scope.spawn(move || {
                        let outcomes: Vec<StepOutcome> =
                            (0..ITERS).map(|_| hub.step(id).unwrap()).collect();
                        let report = hub.evaluate(id).unwrap();
                        fingerprint(&outcomes, &report)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });

        assert_eq!(solo, hubbed);
    }

    #[test]
    fn every_call_rejects_an_unknown_session() {
        // An id minted by one hub is unknown to another (same counter
        // start, but nothing was ever inserted there): every session call
        // must answer `UnknownSession`, not hang or panic.
        let minting_hub = SessionHub::new(2);
        let foreign = minting_hub.create(engine(&tiny(), 1)).unwrap();
        let hub = SessionHub::new(2);
        assert!(matches!(
            hub.step(foreign),
            Err(ServeError::UnknownSession(id)) if id == foreign
        ));
        assert!(matches!(
            hub.step_batch(foreign, 3),
            Err(ServeError::UnknownSession(_))
        ));
        assert!(matches!(
            hub.run(foreign, 2),
            Err(ServeError::UnknownSession(_))
        ));
        assert!(matches!(
            hub.evaluate(foreign),
            Err(ServeError::UnknownSession(_))
        ));
        assert!(matches!(
            hub.evict(foreign),
            Err(ServeError::UnknownSession(_))
        ));
        assert!(matches!(
            hub.close(foreign),
            Err(ServeError::UnknownSession(_))
        ));
        // The failed calls must not have created state as a side effect.
        assert_eq!(hub.session_count().unwrap(), 0);
    }

    #[test]
    fn double_close_reports_unknown_session() {
        let hub = SessionHub::new(2);
        let id = hub.create(engine(&tiny(), 1)).unwrap();
        hub.close(id).unwrap();
        assert!(matches!(
            hub.close(id),
            Err(ServeError::UnknownSession(other)) if other == id
        ));
        // Ids are never reused: a fresh session gets a fresh id and the
        // stale handle stays dead.
        let fresh = hub.create(engine(&tiny(), 2)).unwrap();
        assert_ne!(fresh, id);
        assert!(matches!(hub.step(id), Err(ServeError::UnknownSession(_))));
        assert_eq!(hub.session_count().unwrap(), 1);
    }

    #[test]
    fn step_batch_zero_is_rejected_before_routing() {
        let hub = SessionHub::new(1);
        let id = hub.create(engine(&tiny(), 1)).unwrap();
        assert!(matches!(hub.step_batch(id, 0), Err(ServeError::EmptyBatch)));
        // Even against an unknown id the argument error wins: nothing is
        // routed to a shard.
        let other_hub = SessionHub::new(1);
        let foreign = other_hub.create(engine(&tiny(), 2)).unwrap();
        assert!(matches!(
            hub.step_batch(foreign, 0),
            Err(ServeError::EmptyBatch)
        ));
        // The session is untouched and still serviceable.
        assert_eq!(hub.step(id).unwrap().iteration, 1);
    }

    #[test]
    fn create_from_spec_builds_and_shares_the_dataset() {
        use activedp::{BudgetSchedule, ScenarioSpec};
        let hub = SessionHub::new(2);
        let dataset = adp_data::DatasetSpec {
            id: DatasetId::Youtube,
            scale: Scale::Tiny,
            seed: 7,
        };
        let mut spec = ScenarioSpec::new(dataset);
        spec.session.seed = 3;
        spec.schedule = BudgetSchedule::FixedBatch { k: 4 };
        spec.budget = 8;
        let a = hub.create_from_spec(spec.clone()).unwrap();
        let b = hub.create_from_spec(spec.clone()).unwrap();
        assert_ne!(a, b);
        assert_eq!(hub.step(a).unwrap().iteration, 1);
        // The served session *is* the spec's engine: its snapshot embeds
        // the very spec it was created from (iteration aside).
        let snap = hub.snapshot(a).unwrap();
        assert_eq!(snap.spec.dataset, dataset);
        assert_eq!(snap.spec.schedule, spec.schedule);
        assert_eq!(snap.spec.budget, 8);
        // A named scale and the equivalent custom factor are the same
        // provenance: the second spec reuses the first's cached split and
        // must not be rejected by the provenance check.
        let mut custom = spec.clone();
        custom.dataset.scale = Scale::Custom(Scale::Tiny.factor());
        let c = hub.create_from_spec(custom).unwrap();
        assert_eq!(hub.step(c).unwrap().iteration, 1);
    }

    #[test]
    fn invalid_specs_are_rejected_before_any_id_is_allocated() {
        use activedp::{BudgetSchedule, ScenarioSpec};
        let hub = SessionHub::new(1);
        let dataset = adp_data::DatasetSpec {
            id: DatasetId::Youtube,
            scale: Scale::Tiny,
            seed: 7,
        };
        // Degenerate schedule: the service boundary mirror of EmptyBatch.
        let mut degenerate = ScenarioSpec::new(dataset);
        degenerate.schedule = BudgetSchedule::FixedBatch { k: 0 };
        assert!(matches!(
            hub.create_from_spec(degenerate),
            Err(ServeError::Engine(ActiveDpError::BadConfig { .. }))
        ));
        // Out-of-range session knob.
        let mut bad_alpha = ScenarioSpec::new(dataset);
        bad_alpha.session.alpha = 7.0;
        assert!(matches!(
            hub.create_from_spec(bad_alpha),
            Err(ServeError::Engine(ActiveDpError::BadConfig { .. }))
        ));
        // Ungeneratable dataset spec (scale factor outside (0, 64]).
        let unknown_dataset = ScenarioSpec::new(adp_data::DatasetSpec {
            id: DatasetId::Youtube,
            scale: Scale::Custom(128.0),
            seed: 1,
        });
        assert!(matches!(
            hub.create_from_spec(unknown_dataset),
            Err(ServeError::Engine(ActiveDpError::BadConfig { .. }))
        ));
        assert_eq!(hub.session_count().unwrap(), 0);
    }

    #[test]
    fn error_messages_render() {
        let hub = SessionHub::new(1);
        let id = hub.create(engine(&tiny(), 1)).unwrap();
        hub.close(id).unwrap();
        let unknown = hub.step(id).unwrap_err();
        assert!(unknown.to_string().contains("unknown session-"));
        assert!(ServeError::EmptyBatch.to_string().contains("k >= 1"));
        assert!(ServeError::Saturated {
            resident: 4,
            cap: 4
        }
        .to_string()
        .contains("saturated"));
    }

    #[test]
    fn dropping_the_hub_joins_workers() {
        let hub = SessionHub::new(2);
        let id = hub.create(engine(&tiny(), 1)).unwrap();
        hub.step(id).unwrap();
        drop(hub); // must not hang or panic
    }

    #[test]
    fn budget_evicts_lru_and_sessions_resume_transparently() {
        let dir = unique_tempdir("lru");
        let hub = SessionHub::with_spill_dir(1, &dir).with_memory_budget(2);
        let a = hub
            .open_spec(spec_of(1), SessionConfig::paper_defaults(true, 1))
            .unwrap();
        let b = hub
            .open_spec(spec_of(2), SessionConfig::paper_defaults(true, 2))
            .unwrap();
        hub.step(a).unwrap(); // a is now more recently touched than b
        let c = hub
            .open_spec(spec_of(3), SessionConfig::paper_defaults(true, 3))
            .unwrap();
        // Creating c pushed residency to 3; the LRU victim is b.
        assert_eq!(hub.resident_ids(), vec![a, c]);
        assert_eq!(hub.cold_ids(), vec![b]);
        assert_eq!(hub.session_count().unwrap(), 3);
        // Status probes the cold session from disk without resuming it.
        assert_eq!(hub.status(b).unwrap().iteration, 0);
        assert_eq!(hub.cold_ids(), vec![b]);
        // Touching b resumes it; someone else (now the LRU: a) goes cold.
        assert_eq!(hub.step(b).unwrap().iteration, 1);
        assert_eq!(hub.resident_ids(), vec![b, c]);
        assert_eq!(hub.cold_ids(), vec![a]);
        // Every session still serves, cold or hot.
        hub.run(a, 1).unwrap();
        hub.run(b, 1).unwrap();
        hub.run(c, 1).unwrap();
        assert!(hub.metrics().evicted_total.get() >= 2);
        assert!(hub.metrics().resumed_total.get() >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn saturation_is_a_typed_backpressure_error() {
        // Budget of 1 and no spill directory: nothing can be evicted, so
        // the second create must be rejected, typed, with the first
        // session untouched.
        let hub = SessionHub::with_shards_and_spill(1, None).with_memory_budget(1);
        let id = hub.create(engine(&tiny(), 1)).unwrap();
        let err = hub.create(engine(&tiny(), 2)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Saturated {
                resident: 1,
                cap: 1
            }
        ));
        assert_eq!(hub.metrics().saturated_total.get(), 1);
        assert_eq!(hub.step(id).unwrap().iteration, 1);
        // Closing the resident session makes room again.
        hub.close(id).unwrap();
        assert!(hub.create(engine(&tiny(), 3)).is_ok());
    }

    #[test]
    fn unevictable_sessions_saturate_a_spilling_hub() {
        // Provenance-stripped datasets cannot snapshot, so their sessions
        // cannot spill: with every resident slot pinned by one, a budgeted
        // hub must refuse further creates even though it has a spill dir.
        let dir = unique_tempdir("pinned");
        let hub = SessionHub::with_spill_dir(1, &dir).with_memory_budget(1);
        let adhoc = || {
            let mut data = spec_of(1).generate().unwrap();
            data.provenance = None;
            Engine::builder(data).seed(1).build().unwrap()
        };
        let pinned = hub.create(adhoc()).unwrap();
        // The second create is admitted optimistically (the slot still
        // looks evictable), the budget sweep discovers both are pinned…
        let second = hub.create(adhoc()).unwrap();
        // …and from then on the hub reports saturation.
        assert!(matches!(
            hub.create(adhoc()),
            Err(ServeError::Saturated { .. })
        ));
        assert!(hub.metrics().saturated_total.get() >= 1);
        // Pinned sessions keep serving; explicit evict says "no" politely.
        assert_eq!(hub.step(pinned).unwrap().iteration, 1);
        assert!(matches!(hub.evict(pinned), Ok(false)));
        assert!(matches!(hub.evict(second), Ok(false)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_evict_roundtrips_without_a_budget() {
        let dir = unique_tempdir("evict");
        let hub = SessionHub::with_spill_dir(2, &dir);
        let id = hub
            .open_spec(spec_of(4), SessionConfig::paper_defaults(true, 4))
            .unwrap();
        hub.run(id, 3).unwrap();
        assert!(matches!(hub.evict(id), Ok(true)));
        assert_eq!(hub.cold_ids(), vec![id]);
        // Double-evict is a no-op, not an error.
        assert!(matches!(hub.evict(id), Ok(false)));
        // The next touch resumes exactly where the session left off.
        assert_eq!(hub.step(id).unwrap().iteration, 4);
        assert_eq!(hub.cold_ids(), vec![]);
        // Closing a cold session forgets it without resuming.
        assert!(matches!(hub.evict(id), Ok(true)));
        hub.close(id).unwrap();
        assert_eq!(hub.session_count().unwrap(), 0);
        assert!(matches!(hub.step(id), Err(ServeError::UnknownSession(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_registries_recover_instead_of_cascading() {
        // Regression: the shared registries used `.expect("… lock")`, so
        // one panicking thread holding a guard poisoned the mutex and
        // turned every later hub call into a panic. Poison now recovers.
        let dir = unique_tempdir("poison");
        let hub = SessionHub::with_spill_dir(1, &dir);
        let id = hub
            .open_spec(spec_of(5), SessionConfig::paper_defaults(true, 5))
            .unwrap();
        let shared = hub.shared.clone();
        let _ = std::thread::spawn(move || {
            let _datasets = shared.datasets.lock().unwrap();
            let _journals = shared.journals.lock().unwrap();
            let _slots = shared.slots.lock().unwrap();
            panic!("poison all hub registries");
        })
        .join();
        assert!(hub.shared.datasets.is_poisoned());
        // Every path that takes those locks still serves.
        assert_eq!(hub.step(id).unwrap().iteration, 1);
        let second = hub
            .open_spec(spec_of(5), SessionConfig::paper_defaults(true, 6))
            .unwrap();
        assert!(hub.status(second).unwrap().durability.is_some());
        assert_eq!(hub.session_count().unwrap(), 2);
        hub.close(id).unwrap();
        hub.close(second).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_shard_surfaces_hub_closed_not_a_silent_undercount() {
        let hub = SessionHub::new(2);
        // One session per shard; arm shard `bomb.0 % 2` with an observer
        // that detonates on its first step.
        let data = tiny();
        let healthy = hub.create(engine(&data, 1)).unwrap();
        let mut rigged = engine(&data, 2);
        rigged.add_observer(|_o: &StepOutcome| panic!("rigged session"));
        let bomb = hub.create(rigged).unwrap();
        assert_ne!(
            healthy.raw() % 2,
            bomb.raw() % 2,
            "sessions must land on different shards"
        );
        assert_eq!(hub.session_count().unwrap(), 2);
        // Stepping the rigged session kills its shard worker mid-command.
        assert!(matches!(hub.step(bomb), Err(ServeError::HubClosed)));
        // Regression: session_count used `unwrap_or(0)`, silently
        // reporting 1 here. A dead shard is now a typed error…
        assert!(matches!(hub.session_count(), Err(ServeError::HubClosed)));
        // …and health says which shard died while the other keeps serving.
        let health = hub.health();
        assert!(!health.all_alive());
        let dead = health.shards.iter().find(|s| !s.alive).unwrap();
        assert_eq!(dead.shard, (bomb.raw() % 2) as usize);
        assert!(health.shards.iter().any(|s| s.alive));
        assert_eq!(hub.step(healthy).unwrap().iteration, 1);
        drop(hub); // joining a panicked worker must not hang or re-panic
    }

    #[test]
    fn health_reports_shards_and_tiering_counters() {
        let dir = unique_tempdir("health");
        let hub = SessionHub::with_spill_dir(2, &dir).with_memory_budget(1);
        let a = hub
            .open_spec(spec_of(6), SessionConfig::paper_defaults(true, 6))
            .unwrap();
        let b = hub
            .open_spec(spec_of(7), SessionConfig::paper_defaults(true, 7))
            .unwrap();
        let _ = (a, b);
        let health = hub.health();
        assert!(health.all_alive());
        assert_eq!(health.shards.len(), 2);
        assert_eq!(health.max_resident, Some(1));
        assert_eq!(health.resident, 1);
        assert_eq!(health.cold, 1);
        assert_eq!(health.evicted_total, 1);
        assert_eq!(
            health.shards.iter().map(|s| s.resident).sum::<usize>(),
            health.resident
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn spec_of(seed: u64) -> adp_data::DatasetSpec {
        adp_data::DatasetSpec {
            id: DatasetId::Youtube,
            scale: Scale::Tiny,
            seed,
        }
    }
}
