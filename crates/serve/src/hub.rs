//! The sharded session registry: engines behind ids, one worker thread per
//! shard.

use activedp::{ActiveDpError, Engine, EngineBuilder, EvalReport, StepOutcome};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// Opaque handle to one session inside a [`SessionHub`].
///
/// Ids are unique for the lifetime of the hub (a monotone counter, never
/// reused after [`SessionHub::close`]) and also encode the shard the
/// session lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw id, e.g. for logging or an external routing table.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Errors surfaced by [`SessionHub`] calls.
#[derive(Debug)]
pub enum ServeError {
    /// No session with that id (never created, or already closed).
    UnknownSession(SessionId),
    /// A `step_batch` request with `k = 0`. The engine itself treats an
    /// empty batch as a no-op, but at the service boundary it is always a
    /// caller bug, so the hub rejects it before routing to a shard.
    EmptyBatch,
    /// The session's engine returned an error.
    Engine(ActiveDpError),
    /// The hub's workers are gone (the hub was dropped mid-call).
    HubClosed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownSession(id) => write!(f, "unknown {id}"),
            ServeError::EmptyBatch => write!(f, "step_batch requires k >= 1"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::HubClosed => write!(f, "session hub is shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ActiveDpError> for ServeError {
    fn from(e: ActiveDpError) -> Self {
        ServeError::Engine(e)
    }
}

/// One request to a shard worker. Every variant carries its own reply
/// channel, so concurrent callers never contend on a shared reply path.
enum Command {
    Insert {
        id: u64,
        engine: Box<Engine>,
        reply: Sender<()>,
    },
    Step {
        id: u64,
        reply: Sender<Result<StepOutcome, ServeError>>,
    },
    StepBatch {
        id: u64,
        k: usize,
        reply: Sender<Result<Vec<StepOutcome>, ServeError>>,
    },
    Run {
        id: u64,
        iterations: usize,
        reply: Sender<Result<(), ServeError>>,
    },
    Evaluate {
        id: u64,
        reply: Sender<Result<EvalReport, ServeError>>,
    },
    Close {
        id: u64,
        reply: Sender<Result<(), ServeError>>,
    },
    Count {
        reply: Sender<usize>,
    },
}

/// A registry of concurrent labelling sessions, sharded over worker
/// threads.
///
/// Sessions are owned by their shard's worker; the hub routes each call to
/// the right shard (`id % n_shards`) and blocks on the reply. Calls for
/// *different* sessions on different shards run in parallel; calls for
/// sessions on the same shard serialise in arrival order — within one
/// session that is exactly the engine's own sequential semantics, so
/// per-session trajectories are deterministic regardless of hub load.
pub struct SessionHub {
    shards: Vec<Sender<Command>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl SessionHub {
    /// A hub with `n_shards` worker threads (at least one).
    pub fn new(n_shards: usize) -> Self {
        let n = n_shards.max(1);
        let mut shards = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for k in 0..n {
            let (tx, rx) = channel();
            shards.push(tx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("adp-serve-shard-{k}"))
                    .spawn(move || shard_worker(rx))
                    .expect("shard worker spawns"),
            );
        }
        SessionHub {
            shards,
            workers,
            next_id: AtomicU64::new(0),
        }
    }

    /// Number of shard workers.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Registers a ready-built engine and returns its session id.
    pub fn create(&self, engine: Engine) -> Result<SessionId, ServeError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.call(id, |reply| Command::Insert {
            id,
            engine: Box::new(engine),
            reply,
        })?;
        Ok(SessionId(id))
    }

    /// Builds the engine from `builder` and registers it — the one-call
    /// path from dataset to served session. Build errors (invalid config)
    /// surface before any id is allocated.
    pub fn open(&self, builder: EngineBuilder) -> Result<SessionId, ServeError> {
        self.create(builder.build()?)
    }

    /// One training iteration of the identified session.
    pub fn step(&self, id: SessionId) -> Result<StepOutcome, ServeError> {
        self.call(id.0, |reply| Command::Step { id: id.0, reply })?
    }

    /// Batched stepping: up to `k` queries, one refit (see
    /// `Engine::step_batch`). `k = 0` is rejected with
    /// [`ServeError::EmptyBatch`] without touching the session.
    pub fn step_batch(&self, id: SessionId, k: usize) -> Result<Vec<StepOutcome>, ServeError> {
        if k == 0 {
            return Err(ServeError::EmptyBatch);
        }
        self.call(id.0, |reply| Command::StepBatch { id: id.0, k, reply })?
    }

    /// Runs `iterations` single steps on the identified session.
    pub fn run(&self, id: SessionId, iterations: usize) -> Result<(), ServeError> {
        self.call(id.0, |reply| Command::Run {
            id: id.0,
            iterations,
            reply,
        })?
    }

    /// Inference-phase evaluation of the identified session.
    pub fn evaluate(&self, id: SessionId) -> Result<EvalReport, ServeError> {
        self.call(id.0, |reply| Command::Evaluate { id: id.0, reply })?
    }

    /// Drops the identified session, freeing its engine.
    pub fn close(&self, id: SessionId) -> Result<(), ServeError> {
        self.call(id.0, |reply| Command::Close { id: id.0, reply })?
    }

    /// Number of live sessions across all shards.
    pub fn session_count(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let (reply, rx) = channel();
                if shard.send(Command::Count { reply }).is_err() {
                    return 0;
                }
                rx.recv().unwrap_or(0)
            })
            .sum()
    }

    /// Routes one command to the owning shard and blocks on its reply.
    fn call<T>(&self, id: u64, make: impl FnOnce(Sender<T>) -> Command) -> Result<T, ServeError> {
        let shard = &self.shards[(id as usize) % self.shards.len()];
        let (reply, rx) = channel();
        shard.send(make(reply)).map_err(|_| ServeError::HubClosed)?;
        rx.recv().map_err(|_| ServeError::HubClosed)
    }
}

impl Drop for SessionHub {
    fn drop(&mut self) {
        // Closing the senders ends each worker's receive loop; join so no
        // worker outlives the hub.
        self.shards.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn shard_worker(rx: Receiver<Command>) {
    let mut sessions: HashMap<u64, Engine> = HashMap::new();
    // Replies may fail only when the caller gave up (hub dropped mid-call);
    // the worker just moves on.
    for command in rx {
        match command {
            Command::Insert { id, engine, reply } => {
                sessions.insert(id, *engine);
                let _ = reply.send(());
            }
            Command::Step { id, reply } => {
                let _ = reply.send(with_session(&mut sessions, id, |e| {
                    e.step().map_err(ServeError::Engine)
                }));
            }
            Command::StepBatch { id, k, reply } => {
                let _ = reply.send(with_session(&mut sessions, id, |e| {
                    e.step_batch(k).map_err(ServeError::Engine)
                }));
            }
            Command::Run {
                id,
                iterations,
                reply,
            } => {
                let _ = reply.send(with_session(&mut sessions, id, |e| {
                    e.run(iterations).map_err(ServeError::Engine)
                }));
            }
            Command::Evaluate { id, reply } => {
                let _ = reply.send(with_session(&mut sessions, id, |e| {
                    e.evaluate_downstream().map_err(ServeError::Engine)
                }));
            }
            Command::Close { id, reply } => {
                let _ = reply.send(
                    sessions
                        .remove(&id)
                        .map(|_| ())
                        .ok_or(ServeError::UnknownSession(SessionId(id))),
                );
            }
            Command::Count { reply } => {
                let _ = reply.send(sessions.len());
            }
        }
    }
}

fn with_session<T>(
    sessions: &mut HashMap<u64, Engine>,
    id: u64,
    f: impl FnOnce(&mut Engine) -> Result<T, ServeError>,
) -> Result<T, ServeError> {
    match sessions.get_mut(&id) {
        Some(engine) => f(engine),
        None => Err(ServeError::UnknownSession(SessionId(id))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{generate, DatasetId, Scale, SharedDataset};

    fn tiny() -> SharedDataset {
        generate(DatasetId::Youtube, Scale::Tiny, 7)
            .unwrap()
            .into_shared()
    }

    fn engine(data: &SharedDataset, seed: u64) -> Engine {
        Engine::builder(data.clone()).seed(seed).build().unwrap()
    }

    /// The trajectory fingerprint compared between hub and solo runs.
    fn fingerprint(outcomes: &[StepOutcome], report: &EvalReport) -> (Vec<Option<usize>>, u64) {
        (
            outcomes.iter().map(|o| o.query).collect(),
            report.test_accuracy.to_bits(),
        )
    }

    #[test]
    fn create_step_evaluate_close_roundtrip() {
        let hub = SessionHub::new(2);
        let id = hub.create(engine(&tiny(), 1)).unwrap();
        let out = hub.step(id).unwrap();
        assert_eq!(out.iteration, 1);
        hub.run(id, 4).unwrap();
        let report = hub.evaluate(id).unwrap();
        assert!((0.0..=1.0).contains(&report.test_accuracy));
        assert_eq!(hub.session_count(), 1);
        hub.close(id).unwrap();
        assert_eq!(hub.session_count(), 0);
        assert!(matches!(hub.step(id), Err(ServeError::UnknownSession(_))));
    }

    #[test]
    fn open_builds_and_registers() {
        let hub = SessionHub::new(1);
        let id = hub.open(Engine::builder(tiny()).seed(3)).unwrap();
        assert_eq!(hub.step(id).unwrap().iteration, 1);
        // Build errors surface synchronously, no id leaked.
        let err = hub.open(Engine::builder(tiny()).alpha(7.0));
        assert!(matches!(err, Err(ServeError::Engine(_))));
        assert_eq!(hub.session_count(), 1);
    }

    #[test]
    fn step_batch_routes_through_the_hub() {
        let hub = SessionHub::new(2);
        let id = hub.create(engine(&tiny(), 2)).unwrap();
        let outcomes = hub.step_batch(id, 5).unwrap();
        assert_eq!(outcomes.len(), 5);
        assert_eq!(outcomes.last().unwrap().iteration, 5);
    }

    #[test]
    fn ids_spread_across_shards() {
        let hub = SessionHub::new(3);
        let data = tiny();
        for seed in 0..6 {
            hub.create(engine(&data, seed)).unwrap();
        }
        assert_eq!(hub.session_count(), 6);
        assert_eq!(hub.n_shards(), 3);
    }

    #[test]
    fn concurrent_sessions_match_solo_trajectories() {
        // The acceptance bar: ≥ 8 sessions stepped concurrently through
        // the hub reproduce their solo trajectories bit for bit.
        const SESSIONS: u64 = 8;
        const ITERS: usize = 10;
        let data = tiny();

        let solo: Vec<_> = (0..SESSIONS)
            .map(|seed| {
                let mut e = engine(&data, seed);
                let outcomes: Vec<StepOutcome> = (0..ITERS).map(|_| e.step().unwrap()).collect();
                let report = e.evaluate_downstream().unwrap();
                fingerprint(&outcomes, &report)
            })
            .collect();

        let hub = SessionHub::new(4);
        let ids: Vec<SessionId> = (0..SESSIONS)
            .map(|seed| hub.create(engine(&data, seed)).unwrap())
            .collect();
        let hubbed: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = ids
                .iter()
                .map(|&id| {
                    let hub = &hub;
                    scope.spawn(move || {
                        let outcomes: Vec<StepOutcome> =
                            (0..ITERS).map(|_| hub.step(id).unwrap()).collect();
                        let report = hub.evaluate(id).unwrap();
                        fingerprint(&outcomes, &report)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });

        assert_eq!(solo, hubbed);
    }

    #[test]
    fn every_call_rejects_an_unknown_session() {
        // An id minted by one hub is unknown to another (same counter
        // start, but nothing was ever inserted there): every session call
        // must answer `UnknownSession`, not hang or panic.
        let minting_hub = SessionHub::new(2);
        let foreign = minting_hub.create(engine(&tiny(), 1)).unwrap();
        let hub = SessionHub::new(2);
        assert!(matches!(
            hub.step(foreign),
            Err(ServeError::UnknownSession(id)) if id == foreign
        ));
        assert!(matches!(
            hub.step_batch(foreign, 3),
            Err(ServeError::UnknownSession(_))
        ));
        assert!(matches!(
            hub.run(foreign, 2),
            Err(ServeError::UnknownSession(_))
        ));
        assert!(matches!(
            hub.evaluate(foreign),
            Err(ServeError::UnknownSession(_))
        ));
        assert!(matches!(
            hub.close(foreign),
            Err(ServeError::UnknownSession(_))
        ));
        // The failed calls must not have created state as a side effect.
        assert_eq!(hub.session_count(), 0);
    }

    #[test]
    fn double_close_reports_unknown_session() {
        let hub = SessionHub::new(2);
        let id = hub.create(engine(&tiny(), 1)).unwrap();
        hub.close(id).unwrap();
        assert!(matches!(
            hub.close(id),
            Err(ServeError::UnknownSession(other)) if other == id
        ));
        // Ids are never reused: a fresh session gets a fresh id and the
        // stale handle stays dead.
        let fresh = hub.create(engine(&tiny(), 2)).unwrap();
        assert_ne!(fresh, id);
        assert!(matches!(hub.step(id), Err(ServeError::UnknownSession(_))));
        assert_eq!(hub.session_count(), 1);
    }

    #[test]
    fn step_batch_zero_is_rejected_before_routing() {
        let hub = SessionHub::new(1);
        let id = hub.create(engine(&tiny(), 1)).unwrap();
        assert!(matches!(hub.step_batch(id, 0), Err(ServeError::EmptyBatch)));
        // Even against an unknown id the argument error wins: nothing is
        // routed to a shard.
        let other_hub = SessionHub::new(1);
        let foreign = other_hub.create(engine(&tiny(), 2)).unwrap();
        assert!(matches!(
            hub.step_batch(foreign, 0),
            Err(ServeError::EmptyBatch)
        ));
        // The session is untouched and still serviceable.
        assert_eq!(hub.step(id).unwrap().iteration, 1);
    }

    #[test]
    fn error_messages_render() {
        let hub = SessionHub::new(1);
        let id = hub.create(engine(&tiny(), 1)).unwrap();
        hub.close(id).unwrap();
        let unknown = hub.step(id).unwrap_err();
        assert!(unknown.to_string().contains("unknown session-"));
        assert!(ServeError::EmptyBatch.to_string().contains("k >= 1"));
    }

    #[test]
    fn dropping_the_hub_joins_workers() {
        let hub = SessionHub::new(2);
        let id = hub.create(engine(&tiny(), 1)).unwrap();
        hub.step(id).unwrap();
        drop(hub); // must not hang or panic
    }
}
