//! Row-major dense matrix.

use crate::error::LinalgError;
use std::ops::{Index, IndexMut};

/// A row-major dense matrix of `f64`.
///
/// Kept intentionally minimal: the workspace only needs construction,
/// element access, row slices, matrix products and a handful of reductions.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows`×`cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a closure evaluated at each `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row vectors. All rows must share a length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Err(LinalgError::Empty { what: "rows" });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::ShapeMismatch {
                    op: "from_rows",
                    left: (i, cols),
                    right: (i, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix that owns `data` laid out row-major.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat row-major data, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b_kj;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::ops::dot(self.row(i), v))
            .collect())
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// `self += alpha * other`, elementwise.
    pub fn scaled_add(&mut self, alpha: f64, other: &Matrix) -> Result<(), LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "scaled_add",
                left: self.shape(),
                right: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiply every element by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Add `alpha` to the main diagonal (matrix must be square).
    pub fn add_diagonal(&mut self, alpha: f64) -> Result<(), LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        for i in 0..self.rows {
            self[(i, i)] += alpha;
        }
        Ok(())
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// `true` when `|a_ij - a_ji| <= tol` for all pairs.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Overwrites the matrix with `(A + Aᵀ)/2`; the matrix must be square.
    pub fn symmetrize(&mut self) -> Result<(), LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = v;
                self[(j, i)] = v;
            }
        }
        Ok(())
    }

    /// Returns the submatrix given by the (ordered) row and column index sets.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Matrix {
        Matrix::from_fn(row_idx.len(), col_idx.len(), |i, j| {
            self[(row_idx[i], col_idx[j])]
        })
    }

    /// `true` when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2x2(a: f64, b: f64, c: f64, d: f64) -> Matrix {
        Matrix::from_rows(&[vec![a, b], vec![c, d]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(
            Matrix::from_rows(&[]).unwrap_err(),
            LinalgError::Empty { .. }
        ));
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn matmul_known_product() {
        let a = m2x2(1.0, 2.0, 3.0, 4.0);
        let b = m2x2(5.0, 6.0, 7.0, 8.0);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, m2x2(19.0, 22.0, 43.0, 50.0));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m2x2(1.5, -2.0, 0.25, 9.0);
        assert_eq!(a.matmul(&Matrix::identity(2)).unwrap(), a);
        assert_eq!(Matrix::identity(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = m2x2(1.0, 2.0, 3.0, 4.0);
        let v = vec![5.0, 6.0];
        assert_eq!(a.matvec(&v).unwrap(), vec![17.0, 39.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn scaled_add_and_scale() {
        let mut a = m2x2(1.0, 1.0, 1.0, 1.0);
        let b = m2x2(1.0, 2.0, 3.0, 4.0);
        a.scaled_add(2.0, &b).unwrap();
        assert_eq!(a, m2x2(3.0, 5.0, 7.0, 9.0));
        a.scale(0.5);
        assert_eq!(a, m2x2(1.5, 2.5, 3.5, 4.5));
    }

    #[test]
    fn add_diagonal_square_only() {
        let mut a = Matrix::zeros(2, 2);
        a.add_diagonal(3.0).unwrap();
        assert_eq!(a, m2x2(3.0, 0.0, 0.0, 3.0));
        let mut r = Matrix::zeros(2, 3);
        assert!(r.add_diagonal(1.0).is_err());
    }

    #[test]
    fn symmetry_checks() {
        let s = m2x2(2.0, 1.0, 1.0, 2.0);
        assert!(s.is_symmetric(0.0));
        let mut a = m2x2(2.0, 1.0, 3.0, 2.0);
        assert!(!a.is_symmetric(1e-12));
        a.symmetrize().unwrap();
        assert!(a.is_symmetric(0.0));
        assert_eq!(a[(0, 1)], 2.0);
    }

    #[test]
    fn submatrix_picks_rows_cols() {
        let a = Matrix::from_fn(3, 3, |i, j| (3 * i + j) as f64);
        let s = a.submatrix(&[0, 2], &[1, 2]);
        assert_eq!(s, m2x2(1.0, 2.0, 7.0, 8.0));
    }

    #[test]
    fn frob_and_max_abs() {
        let a = m2x2(3.0, 0.0, -4.0, 0.0);
        assert!((a.frob_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn col_extraction() {
        let a = m2x2(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = Matrix::zeros(2, 2);
        assert!(a.all_finite());
        a[(0, 1)] = f64::NAN;
        assert!(!a.all_finite());
    }
}
