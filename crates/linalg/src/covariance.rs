//! Empirical covariance and correlation matrices.
//!
//! The sample loops are the hot path of LabelPick's graphical-lasso input
//! assembly, so both passes (column means, cross-product accumulation) run
//! chunk-wise over the samples through [`crate::parallel`]. Accumulation is
//! *always* grouped by the same fixed-size chunks and reduced in chunk
//! order, so serial and parallel execution produce bitwise-identical
//! results (see `serial_matches_parallel` below).

use crate::dense::Matrix;
use crate::error::LinalgError;
use crate::parallel::{self, Execution};

/// Rows per parallel chunk. Fixed (machine-independent) so results don't
/// depend on the executing hardware.
const CHUNK: usize = 512;
/// Minimum sample count before threads pay for themselves.
const MIN_PARALLEL: usize = 2048;

/// Empirical covariance of `data` (rows = samples, columns = variables).
///
/// Uses the maximum-likelihood denominator `n` (the graphical-lasso
/// convention) rather than `n − 1`.
pub fn covariance_matrix(data: &Matrix) -> Result<Matrix, LinalgError> {
    covariance_matrix_exec(data, parallel::auto(data.nrows(), MIN_PARALLEL))
}

/// [`covariance_matrix`] with explicit scheduling (benches and the
/// behaviour-identity tests drive both paths).
pub fn covariance_matrix_exec(data: &Matrix, exec: Execution) -> Result<Matrix, LinalgError> {
    let (n, p) = data.shape();
    if n == 0 {
        return Err(LinalgError::Empty { what: "samples" });
    }

    // Pass 1: column means, chunk-wise.
    let mean_parts = parallel::map_chunks(n, CHUNK, exec, |rows| {
        let mut sums = vec![0.0; p];
        for i in rows {
            for (m, &x) in sums.iter_mut().zip(data.row(i)) {
                *m += x;
            }
        }
        sums
    });
    let mut means = vec![0.0; p];
    for part in mean_parts {
        for (m, s) in means.iter_mut().zip(part) {
            *m += s;
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }

    // Pass 2: upper-triangular cross products, chunk-wise.
    let means = &means;
    let cov_parts = parallel::map_chunks(n, CHUNK, exec, |rows| {
        let mut acc = vec![0.0; p * p];
        for i in rows {
            let row = data.row(i);
            for j in 0..p {
                let dj = row[j] - means[j];
                if dj == 0.0 {
                    continue;
                }
                for k in j..p {
                    acc[j * p + k] += dj * (row[k] - means[k]);
                }
            }
        }
        acc
    });
    let mut upper = vec![0.0; p * p];
    for part in cov_parts {
        for (u, a) in upper.iter_mut().zip(part) {
            *u += a;
        }
    }

    let mut cov = Matrix::zeros(p, p);
    let inv_n = 1.0 / n as f64;
    for j in 0..p {
        for k in j..p {
            let v = upper[j * p + k] * inv_n;
            cov[(j, k)] = v;
            cov[(k, j)] = v;
        }
    }
    Ok(cov)
}

/// Pearson correlation matrix. Zero-variance columns yield zero correlation
/// off the diagonal and 1 on it, rather than NaN, so downstream sparsity
/// estimation degrades gracefully on degenerate inputs.
pub fn correlation_matrix(data: &Matrix) -> Result<Matrix, LinalgError> {
    let cov = covariance_matrix(data)?;
    let p = cov.nrows();
    let sd: Vec<f64> = (0..p).map(|j| cov[(j, j)].sqrt()).collect();
    let mut corr = Matrix::identity(p);
    for j in 0..p {
        for k in (j + 1)..p {
            let denom = sd[j] * sd[k];
            let r = if denom > 0.0 {
                cov[(j, k)] / denom
            } else {
                0.0
            };
            corr[(j, k)] = r;
            corr[(k, j)] = r;
        }
    }
    Ok(corr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covariance_of_known_data() {
        // x = [0,2], y = [0,4]: var(x)=1, var(y)=4, cov=2 (denominator n).
        let d = Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 4.0]]).unwrap();
        let c = covariance_matrix(&d).unwrap();
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 4.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 2.0).abs() < 1e-12);
        assert_eq!(c[(0, 1)], c[(1, 0)]);
    }

    #[test]
    fn covariance_empty_errors() {
        let d = Matrix::zeros(0, 3);
        assert!(covariance_matrix(&d).is_err());
    }

    #[test]
    fn covariance_single_sample_is_zero() {
        let d = Matrix::from_rows(&[vec![5.0, -3.0]]).unwrap();
        let c = covariance_matrix(&d).unwrap();
        assert_eq!(c.max_abs(), 0.0);
    }

    #[test]
    fn correlation_perfectly_correlated() {
        let d = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        let c = correlation_matrix(&d).unwrap();
        assert!((c[(0, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_anticorrelated() {
        let d = Matrix::from_rows(&[vec![0.0, 2.0], vec![1.0, 1.0], vec![2.0, 0.0]]).unwrap();
        let c = correlation_matrix(&d).unwrap();
        assert!((c[(0, 1)] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_zero_variance_column_is_finite() {
        let d = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let c = correlation_matrix(&d).unwrap();
        assert_eq!(c[(0, 1)], 0.0);
        assert_eq!(c[(0, 0)], 1.0);
        assert!(c.all_finite());
    }

    #[test]
    fn covariance_is_psd_on_random_ish_data() {
        // Deterministic pseudo-data; PSD check via Cholesky of cov + eps I.
        let d = Matrix::from_fn(20, 4, |i, j| ((i * 7 + j * 13) % 11) as f64 * 0.37);
        let mut c = covariance_matrix(&d).unwrap();
        c.add_diagonal(1e-9).unwrap();
        assert!(crate::cholesky::Cholesky::factor(&c).is_ok());
    }

    #[test]
    fn serial_matches_parallel_bitwise() {
        // Big enough for several chunks and awkwardly sized (not a chunk
        // multiple).
        let d = Matrix::from_fn(5 * CHUNK + 137, 6, |i, j| {
            (((i * 31 + j * 17) % 97) as f64 - 48.0) * 0.013
        });
        let serial = covariance_matrix_exec(&d, Execution::Serial).unwrap();
        let parallel = covariance_matrix_exec(&d, Execution::parallel()).unwrap();
        for j in 0..6 {
            for k in 0..6 {
                assert!(
                    serial[(j, k)].to_bits() == parallel[(j, k)].to_bits(),
                    "({j},{k}): {} vs {}",
                    serial[(j, k)],
                    parallel[(j, k)]
                );
            }
        }
    }
}
