//! Error type shared by the linear-algebra kernels.

use std::fmt;

/// Errors produced by the `adp-linalg` crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible (e.g. matmul of 2×3 by 2×2).
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand.
        left: (usize, usize),
        /// Shape of the right/second operand.
        right: (usize, usize),
    },
    /// A matrix expected to be symmetric positive definite was not.
    NotPositiveDefinite {
        /// Pivot index at which factorization broke down.
        pivot: usize,
    },
    /// The input matrix must be square.
    NotSquare {
        /// Actual shape.
        shape: (usize, usize),
    },
    /// An empty input where at least one element/row is required.
    Empty {
        /// Description of the offending argument.
        what: &'static str,
    },
    /// Solver failed to converge within its iteration budget.
    DidNotConverge {
        /// Description of the solver.
        what: &'static str,
        /// Iterations performed.
        iterations: usize,
    },
    /// Input contained NaN or infinite entries.
    NonFinite {
        /// Description of the offending argument.
        what: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Empty { what } => write!(f, "empty input: {what}"),
            LinalgError::DidNotConverge { what, iterations } => {
                write!(f, "{what} did not converge after {iterations} iterations")
            }
            LinalgError::NonFinite { what } => write!(f, "non-finite values in {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            left: (2, 3),
            right: (2, 2),
        };
        assert_eq!(e.to_string(), "shape mismatch in matmul: 2x3 vs 2x2");
    }

    #[test]
    fn display_not_pd() {
        let e = LinalgError::NotPositiveDefinite { pivot: 4 };
        assert!(e.to_string().contains("pivot 4"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&LinalgError::Empty { what: "rows" });
    }
}
