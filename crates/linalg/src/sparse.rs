//! Compressed-sparse-row matrices and the [`Features`] row-access trait.
//!
//! TF-IDF matrices for the text datasets are extremely sparse (documents
//! touch a few dozen of thousands of vocabulary terms), so the classifier
//! stack works through [`Features`], implemented both here for [`CsrMatrix`]
//! and in [`crate::dense`]'s [`Matrix`].

use crate::dense::Matrix;
use crate::error::LinalgError;

/// Row-wise access to a feature matrix, the only interface the logistic
/// regression needs. Implemented for dense [`Matrix`] and [`CsrMatrix`].
pub trait Features: Sync {
    /// Number of samples (rows).
    fn nrows(&self) -> usize;
    /// Number of features (columns).
    fn ncols(&self) -> usize;
    /// `⟨x_i, w⟩` for row `i`.
    fn row_dot(&self, i: usize, w: &[f64]) -> f64;
    /// `out += alpha · x_i`.
    fn row_axpy(&self, i: usize, alpha: f64, out: &mut [f64]);
    /// `‖x_i‖²`.
    fn row_sq_norm(&self, i: usize) -> f64;
}

impl Features for Matrix {
    fn nrows(&self) -> usize {
        Matrix::nrows(self)
    }
    fn ncols(&self) -> usize {
        Matrix::ncols(self)
    }
    fn row_dot(&self, i: usize, w: &[f64]) -> f64 {
        crate::ops::dot(self.row(i), w)
    }
    fn row_axpy(&self, i: usize, alpha: f64, out: &mut [f64]) {
        crate::ops::axpy(alpha, self.row(i), out);
    }
    fn row_sq_norm(&self, i: usize) -> f64 {
        crate::ops::dot(self.row(i), self.row(i))
    }
}

/// Immutable CSR matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// An empty matrix with `nrows` rows and `ncols` columns, no stored values.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1],
            indices: vec![],
            values: vec![],
        }
    }

    /// Number of stored (explicit) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(column indices, values)` of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Dense matrix-vector product `self · v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.ncols {
            return Err(LinalgError::ShapeMismatch {
                op: "csr_matvec",
                left: (self.nrows, self.ncols),
                right: (v.len(), 1),
            });
        }
        Ok((0..self.nrows).map(|i| self.row_dot(i, v)).collect())
    }

    /// Per-column sum of stored values.
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.ncols];
        for (&j, &x) in self.indices.iter().zip(&self.values) {
            sums[j as usize] += x;
        }
        sums
    }

    /// Per-column count of stored entries (document frequency when rows are
    /// documents).
    pub fn column_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.ncols];
        for &j in &self.indices {
            counts[j as usize] += 1;
        }
        counts
    }

    /// L2-normalises every non-empty row in place.
    pub fn l2_normalize_rows(&mut self) {
        for i in 0..self.nrows {
            let lo = self.indptr[i];
            let hi = self.indptr[i + 1];
            let norm: f64 = self.values[lo..hi]
                .iter()
                .map(|x| x * x)
                .sum::<f64>()
                .sqrt();
            if norm > 0.0 {
                for x in &mut self.values[lo..hi] {
                    *x /= norm;
                }
            }
        }
    }

    /// Dense copy (tests/debugging only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            let (idx, vals) = self.row(i);
            for (&j, &x) in idx.iter().zip(vals) {
                m[(i, j as usize)] = x;
            }
        }
        m
    }

    /// Keeps only the rows in `rows` (in the given order).
    pub fn select_rows(&self, rows: &[usize]) -> CsrMatrix {
        let mut b = CsrBuilder::new(self.ncols);
        for &r in rows {
            let (idx, vals) = self.row(r);
            b.push_row_raw(idx, vals);
        }
        b.finish()
    }
}

impl Features for CsrMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    #[inline]
    fn row_dot(&self, i: usize, w: &[f64]) -> f64 {
        let (idx, vals) = self.row(i);
        idx.iter().zip(vals).map(|(&j, &x)| x * w[j as usize]).sum()
    }
    #[inline]
    fn row_axpy(&self, i: usize, alpha: f64, out: &mut [f64]) {
        let (idx, vals) = self.row(i);
        for (&j, &x) in idx.iter().zip(vals) {
            out[j as usize] += alpha * x;
        }
    }
    fn row_sq_norm(&self, i: usize) -> f64 {
        let (_, vals) = self.row(i);
        vals.iter().map(|x| x * x).sum()
    }
}

/// Incremental row-by-row CSR constructor.
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrBuilder {
    /// A builder for matrices with `ncols` columns and no rows yet.
    pub fn new(ncols: usize) -> Self {
        CsrBuilder {
            ncols,
            indptr: vec![0],
            indices: vec![],
            values: vec![],
        }
    }

    /// Appends a row given `(column, value)` pairs; the pairs are sorted by
    /// column, duplicate columns are summed and explicit zeros dropped.
    ///
    /// # Panics
    /// Panics if any column index is out of range — feeding a builder indices
    /// beyond `ncols` is a programming error, not an input condition.
    pub fn push_row(&mut self, mut entries: Vec<(u32, f64)>) {
        entries.sort_unstable_by_key(|&(j, _)| j);
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(entries.len());
        for (j, x) in entries {
            assert!(
                (j as usize) < self.ncols,
                "column {} out of range (ncols={})",
                j,
                self.ncols
            );
            match merged.last_mut() {
                Some((last_j, last_x)) if *last_j == j => *last_x += x,
                _ => merged.push((j, x)),
            }
        }
        for (j, x) in merged {
            if x != 0.0 {
                self.indices.push(j);
                self.values.push(x);
            }
        }
        self.indptr.push(self.indices.len());
    }

    /// Appends an already sorted, deduplicated row (used by `select_rows`).
    fn push_row_raw(&mut self, idx: &[u32], vals: &[f64]) {
        self.indices.extend_from_slice(idx);
        self.values.extend_from_slice(vals);
        self.indptr.push(self.indices.len());
    }

    /// Number of rows pushed so far.
    pub fn nrows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Finalises the matrix.
    pub fn finish(self) -> CsrMatrix {
        CsrMatrix {
            nrows: self.indptr.len() - 1,
            ncols: self.ncols,
            indptr: self.indptr,
            indices: self.indices,
            values: self.values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 0]
        // [0 3 0]
        let mut b = CsrBuilder::new(3);
        b.push_row(vec![(0, 1.0), (2, 2.0)]);
        b.push_row(vec![]);
        b.push_row(vec![(1, 3.0)]);
        b.finish()
    }

    #[test]
    fn builder_roundtrip() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 3);
        let (idx, vals) = m.row(0);
        assert_eq!(idx, &[0, 2]);
        assert_eq!(vals, &[1.0, 2.0]);
        let (idx, _) = m.row(1);
        assert!(idx.is_empty());
    }

    #[test]
    fn push_row_sorts_and_merges_duplicates() {
        let mut b = CsrBuilder::new(4);
        b.push_row(vec![(3, 1.0), (1, 2.0), (3, 4.0), (0, 0.0)]);
        let m = b.finish();
        let (idx, vals) = m.row(0);
        assert_eq!(idx, &[1, 3]);
        assert_eq!(vals, &[2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_row_panics_on_bad_column() {
        let mut b = CsrBuilder::new(2);
        b.push_row(vec![(2, 1.0)]);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(m.matvec(&v).unwrap(), vec![7.0, 0.0, 6.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn to_dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d[(0, 2)], 2.0);
        assert_eq!(d[(1, 1)], 0.0);
        assert_eq!(d[(2, 1)], 3.0);
    }

    #[test]
    fn column_stats() {
        let m = sample();
        assert_eq!(m.column_sums(), vec![1.0, 3.0, 2.0]);
        assert_eq!(m.column_counts(), vec![1, 1, 1]);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let mut m = sample();
        m.l2_normalize_rows();
        let (_, vals) = m.row(0);
        let norm: f64 = vals.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
        // Empty rows untouched.
        assert_eq!(m.row(1).1.len(), 0);
    }

    #[test]
    fn features_trait_dense_sparse_agree() {
        let m = sample();
        let d = m.to_dense();
        let w = vec![0.5, -1.0, 2.0];
        for i in 0..3 {
            assert!((Features::row_dot(&m, i, &w) - Features::row_dot(&d, i, &w)).abs() < 1e-12);
            assert!((Features::row_sq_norm(&m, i) - Features::row_sq_norm(&d, i)).abs() < 1e-12);
            let mut out_s = vec![0.0; 3];
            let mut out_d = vec![0.0; 3];
            Features::row_axpy(&m, i, 2.0, &mut out_s);
            Features::row_axpy(&d, i, 2.0, &mut out_d);
            assert_eq!(out_s, out_d);
        }
    }

    #[test]
    fn select_rows_preserves_content() {
        let m = sample();
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.nrows(), 2);
        let (idx, vals) = s.row(0);
        assert_eq!((idx, vals), (&[1u32][..], &[3.0][..]));
        let (idx, vals) = s.row(1);
        assert_eq!((idx, vals), (&[0u32, 2][..], &[1.0, 2.0][..]));
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::empty(2, 5);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.matvec(&[0.0; 5]).unwrap(), vec![0.0, 0.0]);
    }
}
