//! Ridge regression via the normal equations.
//!
//! Used by the LAL sampler (regressing expected error reduction on model
//! state features) and by IWS's LF-accuracy regression. Problems are tiny
//! (tens of features), so the dense normal-equation route is appropriate.

use crate::cholesky::Cholesky;
use crate::dense::Matrix;
use crate::error::LinalgError;

/// Fits `w = argmin ‖Xw − y‖² + λ‖w‖²` and returns `w`.
///
/// `x` has one sample per row. `lambda` must be positive, which also
/// guarantees the normal equations are solvable regardless of rank.
pub fn ridge_regression(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>, LinalgError> {
    let (n, d) = x.shape();
    if y.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "ridge_regression",
            left: (n, d),
            right: (y.len(), 1),
        });
    }
    if n == 0 {
        return Err(LinalgError::Empty { what: "samples" });
    }
    if lambda <= 0.0 || !lambda.is_finite() {
        return Err(LinalgError::NonFinite { what: "lambda" });
    }
    // Gram matrix XᵀX + λI.
    let mut gram = Matrix::zeros(d, d);
    for i in 0..n {
        let row = x.row(i);
        for j in 0..d {
            let xj = row[j];
            if xj == 0.0 {
                continue;
            }
            for k in j..d {
                gram[(j, k)] += xj * row[k];
            }
        }
    }
    for j in 0..d {
        for k in j..d {
            gram[(k, j)] = gram[(j, k)];
        }
        gram[(j, j)] += lambda;
    }
    // Xᵀy.
    let mut xty = vec![0.0; d];
    for i in 0..n {
        crate::ops::axpy(y[i], x.row(i), &mut xty);
    }
    Cholesky::factor(&gram)?.solve(&xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_map_with_small_lambda() {
        // y = 2 x0 - 3 x1, plenty of samples, λ→0 recovers the weights.
        let x = Matrix::from_fn(30, 2, |i, j| ((i * 3 + j * 5) % 7) as f64 - 3.0);
        let y: Vec<f64> = (0..30).map(|i| 2.0 * x[(i, 0)] - 3.0 * x[(i, 1)]).collect();
        let w = ridge_regression(&x, &y, 1e-8).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-4);
        assert!((w[1] + 3.0).abs() < 1e-4);
    }

    #[test]
    fn shrinks_towards_zero_with_large_lambda() {
        let x = Matrix::from_fn(10, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let w_small = ridge_regression(&x, &y, 1e-6).unwrap()[0];
        let w_big = ridge_regression(&x, &y, 1e6).unwrap()[0];
        assert!(w_small > 0.99);
        assert!(w_big.abs() < 0.01);
    }

    #[test]
    fn handles_rank_deficient_design() {
        // Two identical columns: OLS is ill-posed, ridge is fine.
        let x = Matrix::from_fn(5, 2, |i, _| i as f64);
        let y: Vec<f64> = (0..5).map(|i| 2.0 * i as f64).collect();
        let w = ridge_regression(&x, &y, 0.1).unwrap();
        assert!(w.iter().all(|wi| wi.is_finite()));
        // Symmetric problem → symmetric solution.
        assert!((w[0] - w[1]).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        let x = Matrix::zeros(3, 2);
        assert!(ridge_regression(&x, &[1.0, 2.0], 0.1).is_err());
        assert!(ridge_regression(&x, &[1.0, 2.0, 3.0], 0.0).is_err());
        let empty = Matrix::zeros(0, 2);
        assert!(ridge_regression(&empty, &[], 0.1).is_err());
    }
}
