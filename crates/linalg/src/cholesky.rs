//! Cholesky factorization of symmetric positive-definite matrices.

use crate::dense::Matrix;
use crate::error::LinalgError;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read, so callers may pass matrices
    /// whose upper triangle carries rounding noise.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Borrow the lower-triangular factor.
    pub fn factor_l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        // Back substitution: Lᵀ x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.l[(k, i)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        Ok(y)
    }

    /// Inverse of the factored matrix, column by column.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }

    /// `log det A = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for B with distinct entries => SPD.
        Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0],
            vec![2.0, 6.0, 3.0],
            vec![1.0, 3.0, 4.0],
        ])
        .unwrap()
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.factor_l().matmul(&ch.factor_l().transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite { .. }
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a).unwrap_err(),
            LinalgError::NotSquare { .. }
        ));
    }

    #[test]
    fn log_det_matches_identity() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert!(ch.log_det().abs() < 1e-12);
    }

    #[test]
    fn log_det_diagonal() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = 2.0;
        a[(1, 1)] = 8.0;
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - (16.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_rejects_bad_len() {
        let ch = Cholesky::factor(&Matrix::identity(3)).unwrap();
        assert!(ch.solve(&[1.0, 2.0]).is_err());
    }
}
