//! Opt-in data parallelism over chunked row ranges, on std scoped threads.
//!
//! The crate stays dependency-free: no rayon, no thread pool — each
//! [`map_chunks`] call splits `[0, n)` into fixed-size chunks and fans the
//! chunk closures out over `std::thread::scope` workers.
//!
//! # The fixed-chunk reduction contract
//!
//! Every parallel hot path in the workspace (logreg batch gradients, TF-IDF
//! vectorisation, the Dawid–Skene E/M-steps, the glasso column sweep, LF
//! application, covariance assembly) routes through [`map_chunks`] under
//! the same three rules, which together make whole training trajectories
//! *machine-independent*:
//!
//! 1. **Chunk boundaries are a pure function of the problem.** They depend
//!    only on `(n, chunk)`, where `chunk` is a compile-time constant of the
//!    kernel — never on the core count, the thread budget, or load. The
//!    same input always produces the same chunks on every machine.
//! 2. **Grouping-sensitive arithmetic is always chunked.** A kernel whose
//!    reduction depends on float grouping (e.g. a gradient sum) accumulates
//!    per-chunk partials and folds them in chunk-index order *in the serial
//!    path too*. Serial execution means "all chunks on the calling thread",
//!    not "a different summation order".
//! 3. **[`Execution`] is a scheduling hint only.** Chunk results come back
//!    in chunk-index order regardless of which worker produced them, so a
//!    sequential fold over [`map_chunks`] output is *bitwise identical*
//!    whether the chunks ran on one thread or sixty-four, with any thread
//!    override in [`Execution::Parallel`].
//!
//! Consequently a session seeded on a laptop replays bit-for-bit on a
//! 64-core server: thread count can change *when* a chunk runs, never
//! *what* it computes or *how* partials combine. The workspace-level
//! `tests/determinism.rs` harness pins this for every kernel (serial vs
//! parallel across thread counts and adversarial chunk sizes) and for a
//! full `Engine` trajectory.
//!
//! Thread count: an explicit [`Execution::Parallel`] `threads` override
//! wins, then `ADP_NUM_THREADS` when set (an operator override, honoured
//! up to 64), else `available_parallelism()` capped at 8 — the kernels
//! here saturate memory bandwidth long before high core counts pay off, so
//! the *default* stays conservative.

use std::ops::Range;
use std::sync::OnceLock;

/// How a [`map_chunks`] call may schedule its chunks.
///
/// Per the module-level contract this is purely a scheduling hint: the
/// chunk decomposition — and therefore every bit of the result — is
/// identical across all variants and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Execution {
    /// Run every chunk on the calling thread.
    Serial,
    /// Fan chunks out over scoped worker threads.
    Parallel {
        /// Worker-thread override for this call (clamped to `1..=64`);
        /// `None` uses the process-wide [`max_threads`] budget. Used by the
        /// determinism harness to sweep thread counts inside one process.
        threads: Option<usize>,
    },
}

impl Execution {
    /// [`Execution::Parallel`] with the default thread budget.
    pub fn parallel() -> Self {
        Execution::Parallel { threads: None }
    }

    /// [`Execution::Parallel`] pinned to exactly `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        Execution::Parallel {
            threads: Some(threads),
        }
    }
}

/// Worker-thread budget (see module docs): `ADP_NUM_THREADS` verbatim
/// (clamped to 1..=64) when set, else auto-detected and capped at 8.
pub fn max_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("ADP_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.clamp(1, 64);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 8)
    })
}

/// [`Execution::Parallel`] (default budget) when `n` is at least
/// `min_parallel` items and the machine has threads to spare;
/// [`Execution::Serial`] otherwise. Callers pick `min_parallel` so
/// thread-spawn overhead can't dominate.
pub fn auto(n: usize, min_parallel: usize) -> Execution {
    if n >= min_parallel && max_threads() > 1 {
        Execution::parallel()
    } else {
        Execution::Serial
    }
}

/// Splits `[0, n)` into `ceil(n / chunk)` consecutive ranges.
pub fn chunk_ranges(n: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    (0..n.div_ceil(chunk))
        .map(|c| c * chunk..((c + 1) * chunk).min(n))
        .collect()
}

/// Applies `f` to every chunk of `[0, n)` and returns the per-chunk results
/// in chunk-index order. Under [`Execution::Parallel`] the chunks are
/// distributed over scoped threads in contiguous blocks; the output order
/// (and therefore any sequential reduction over it) is identical either
/// way.
pub fn map_chunks<T, F>(n: usize, chunk: usize, exec: Execution, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(n, chunk);
    let threads = match exec {
        Execution::Serial => 1,
        Execution::Parallel { threads } => threads
            .map(|t| t.clamp(1, 64))
            .unwrap_or_else(max_threads)
            .min(ranges.len()),
    };
    if threads <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let mut results: Vec<Option<T>> = std::iter::repeat_with(|| None).take(ranges.len()).collect();
    let per_thread = ranges.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest: &mut [Option<T>] = &mut results;
        let mut start = 0;
        while start < ranges.len() {
            let take = per_thread.min(ranges.len() - start);
            let (mine, tail) = rest.split_at_mut(take);
            rest = tail;
            let my_ranges = &ranges[start..start + take];
            start += take;
            scope.spawn(move || {
                for (slot, r) in mine.iter_mut().zip(my_ranges) {
                    *slot = Some(f(r.clone()));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("every chunk ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_partition_exactly() {
        for (n, chunk) in [(0, 4), (1, 4), (4, 4), (5, 4), (1000, 128), (7, 1)] {
            let ranges = chunk_ranges(n, chunk);
            let mut covered = 0;
            for (k, r) in ranges.iter().enumerate() {
                assert_eq!(r.start, covered, "n={n} chunk={chunk}");
                assert!(!r.is_empty());
                assert!(r.len() <= chunk.max(1));
                if k + 1 < ranges.len() {
                    assert_eq!(r.len(), chunk.max(1));
                }
                covered = r.end;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn serial_and_parallel_agree_bitwise() {
        // A reduction whose result depends on grouping: summing 1/(i+1)
        // chunk-wise. Serial and parallel must group identically.
        let n = 100_000;
        let run = |exec| {
            map_chunks(n, 1024, exec, |r| {
                r.map(|i| 1.0 / (i as f64 + 1.0)).sum::<f64>()
            })
            .into_iter()
            .fold(0.0_f64, |acc, x| acc + x)
        };
        let serial = run(Execution::Serial);
        let parallel = run(Execution::parallel());
        assert!(
            serial.to_bits() == parallel.to_bits(),
            "serial {serial:e} != parallel {parallel:e}"
        );
        // A thread override changes scheduling, never the bits.
        for threads in [1, 2, 3, 7, 64] {
            let pinned = run(Execution::with_threads(threads));
            assert_eq!(serial.to_bits(), pinned.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn results_come_back_in_chunk_order() {
        let ids = map_chunks(100, 7, Execution::parallel(), |r| r.start);
        let expected: Vec<usize> = (0..100usize.div_ceil(7)).map(|c| c * 7).collect();
        assert_eq!(ids, expected);
        let pinned = map_chunks(100, 7, Execution::with_threads(3), |r| r.start);
        assert_eq!(pinned, expected);
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let out = map_chunks(0, 16, Execution::parallel(), |_| 1u8);
        assert!(out.is_empty());
    }

    #[test]
    fn thread_override_is_clamped() {
        // 0 threads clamps to 1 (serial path), a huge override to 64; both
        // must produce the full chunk-ordered result.
        let a = map_chunks(50, 3, Execution::with_threads(0), |r| r.len());
        let b = map_chunks(50, 3, Execution::with_threads(10_000), |r| r.len());
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<usize>(), 50);
    }

    #[test]
    fn auto_respects_threshold() {
        assert_eq!(auto(10, 1000), Execution::Serial);
        if max_threads() > 1 {
            assert_eq!(auto(10_000, 1000), Execution::parallel());
        }
    }
}
