//! Opt-in data parallelism over chunked row ranges, on std scoped threads.
//!
//! The crate stays dependency-free: no rayon, no thread pool — each
//! [`map_chunks`] call splits `[0, n)` into fixed-size chunks and fans the
//! chunk closures out over `std::thread::scope` workers.
//!
//! **Determinism contract.** The chunk boundaries depend only on `(n,
//! chunk)` — never on the machine's core count — and results come back in
//! chunk-index order, so a caller that reduces them sequentially gets
//! *bitwise identical* floating-point results whether the chunks ran on one
//! thread or eight. Hot paths therefore always accumulate chunk-wise and
//! use [`Execution`] purely as a scheduling hint; `serial_matches_parallel`
//! tests across the workspace pin this down.
//!
//! Thread count: `ADP_NUM_THREADS` when set (an explicit operator
//! override, honoured up to 64), else `available_parallelism()` capped at
//! 8 — the kernels here saturate memory bandwidth long before high core
//! counts pay off, so the *default* stays conservative.

use std::ops::Range;
use std::sync::OnceLock;

/// How a [`map_chunks`] call may schedule its chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Execution {
    /// Run every chunk on the calling thread.
    Serial,
    /// Fan chunks out over scoped worker threads.
    Parallel,
}

/// Worker-thread budget (see module docs): `ADP_NUM_THREADS` verbatim
/// (clamped to 1..=64) when set, else auto-detected and capped at 8.
pub fn max_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("ADP_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.clamp(1, 64);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 8)
    })
}

/// [`Execution::Parallel`] when `n` is at least `min_parallel` items and
/// the machine has threads to spare; [`Execution::Serial`] otherwise.
/// Callers pick `min_parallel` so thread-spawn overhead can't dominate.
pub fn auto(n: usize, min_parallel: usize) -> Execution {
    if n >= min_parallel && max_threads() > 1 {
        Execution::Parallel
    } else {
        Execution::Serial
    }
}

/// Splits `[0, n)` into `ceil(n / chunk)` consecutive ranges.
pub fn chunk_ranges(n: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    (0..n.div_ceil(chunk))
        .map(|c| c * chunk..((c + 1) * chunk).min(n))
        .collect()
}

/// Applies `f` to every chunk of `[0, n)` and returns the per-chunk results
/// in chunk-index order. Under [`Execution::Parallel`] the chunks are
/// distributed over scoped threads in contiguous blocks; the output order
/// (and therefore any sequential reduction over it) is identical either
/// way.
pub fn map_chunks<T, F>(n: usize, chunk: usize, exec: Execution, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(n, chunk);
    let threads = match exec {
        Execution::Serial => 1,
        Execution::Parallel => max_threads().min(ranges.len()),
    };
    if threads <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let mut results: Vec<Option<T>> = std::iter::repeat_with(|| None).take(ranges.len()).collect();
    let per_thread = ranges.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest: &mut [Option<T>] = &mut results;
        let mut start = 0;
        while start < ranges.len() {
            let take = per_thread.min(ranges.len() - start);
            let (mine, tail) = rest.split_at_mut(take);
            rest = tail;
            let my_ranges = &ranges[start..start + take];
            start += take;
            scope.spawn(move || {
                for (slot, r) in mine.iter_mut().zip(my_ranges) {
                    *slot = Some(f(r.clone()));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("every chunk ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_partition_exactly() {
        for (n, chunk) in [(0, 4), (1, 4), (4, 4), (5, 4), (1000, 128), (7, 1)] {
            let ranges = chunk_ranges(n, chunk);
            let mut covered = 0;
            for (k, r) in ranges.iter().enumerate() {
                assert_eq!(r.start, covered, "n={n} chunk={chunk}");
                assert!(!r.is_empty());
                assert!(r.len() <= chunk.max(1));
                if k + 1 < ranges.len() {
                    assert_eq!(r.len(), chunk.max(1));
                }
                covered = r.end;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn serial_and_parallel_agree_bitwise() {
        // A reduction whose result depends on grouping: summing 1/(i+1)
        // chunk-wise. Serial and parallel must group identically.
        let n = 100_000;
        let run = |exec| {
            map_chunks(n, 1024, exec, |r| {
                r.map(|i| 1.0 / (i as f64 + 1.0)).sum::<f64>()
            })
            .into_iter()
            .fold(0.0_f64, |acc, x| acc + x)
        };
        let serial = run(Execution::Serial);
        let parallel = run(Execution::Parallel);
        assert!(
            serial.to_bits() == parallel.to_bits(),
            "serial {serial:e} != parallel {parallel:e}"
        );
    }

    #[test]
    fn results_come_back_in_chunk_order() {
        let ids = map_chunks(100, 7, Execution::Parallel, |r| r.start);
        let expected: Vec<usize> = (0..100usize.div_ceil(7)).map(|c| c * 7).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let out = map_chunks(0, 16, Execution::Parallel, |_| 1u8);
        assert!(out.is_empty());
    }

    #[test]
    fn auto_respects_threshold() {
        assert_eq!(auto(10, 1000), Execution::Serial);
        if max_threads() > 1 {
            assert_eq!(auto(10_000, 1000), Execution::Parallel);
        }
    }
}
