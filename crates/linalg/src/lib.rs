//! Dense and sparse linear-algebra kernels used across the ActiveDP
//! reproduction.
//!
//! The crate is deliberately small and dependency-free: it provides exactly
//! the primitives the rest of the workspace needs —
//!
//! * [`Matrix`]: a row-major dense matrix with the usual arithmetic,
//! * [`Cholesky`]: factorization/solves for symmetric positive-definite
//!   systems (ridge regression, graphical-lasso book-keeping),
//! * [`lasso_quadratic_cd`]: the ℓ1-penalised quadratic coordinate-descent
//!   solver that powers the graphical lasso's inner loop,
//! * [`CsrMatrix`]: compressed sparse rows for TF-IDF feature matrices,
//! * [`Features`]: the row-access abstraction that lets the logistic
//!   regression in `adp-classifier` run unchanged over dense or sparse data,
//! * assorted vector helpers ([`ops`]) such as `softmax_inplace` and
//!   `entropy` used by the samplers and label models.

pub mod cholesky;
pub mod covariance;
pub mod dense;
pub mod error;
pub mod lasso;
pub mod ops;
pub mod parallel;
pub mod ridge;
pub mod sparse;

pub use cholesky::Cholesky;
pub use covariance::{correlation_matrix, covariance_matrix};
pub use dense::Matrix;
pub use error::LinalgError;
pub use lasso::{lasso_quadratic_cd, soft_threshold};
pub use ops::{argmax, axpy, dot, entropy, log_sum_exp, mean, norm2, softmax_inplace, variance};
pub use parallel::Execution;
pub use ridge::ridge_regression;
pub use sparse::{CsrBuilder, CsrMatrix, Features};
