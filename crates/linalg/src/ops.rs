//! Vector helpers: dot products, norms, softmax, entropy.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds when lengths differ (callers guarantee shapes).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance (denominator `n`); 0 for slices of length < 2.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// `log Σ exp(a_i)` computed stably. Returns `-inf` for an empty slice.
pub fn log_sum_exp(a: &[f64]) -> f64 {
    let m = a.iter().fold(f64::NEG_INFINITY, |acc, &x| acc.max(x));
    if !m.is_finite() {
        return m;
    }
    m + a.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Turns logits into a probability distribution in place (stable softmax).
pub fn softmax_inplace(logits: &mut [f64]) {
    let lse = log_sum_exp(logits);
    for l in logits.iter_mut() {
        *l = (*l - lse).exp();
    }
}

/// Shannon entropy `−Σ p log p` (natural log); zero-probability terms
/// contribute nothing. Negative inputs are clamped to 0 to absorb floating
/// point dust from softmax outputs.
pub fn entropy(p: &[f64]) -> f64 {
    p.iter()
        .map(|&pi| {
            let pi = pi.max(0.0);
            if pi > 0.0 {
                -pi * pi.ln()
            } else {
                0.0
            }
        })
        .sum()
}

/// Index of the maximum element; ties break toward the smallest index.
/// Returns `None` for an empty slice.
pub fn argmax(a: &[f64]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in a.iter().enumerate().skip(1) {
        if v > a[best] {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn mean_variance_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_stability() {
        // Huge logits must not overflow.
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut l = vec![0.0, (2.0_f64).ln()];
        softmax_inplace(&mut l);
        assert!((l.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((l[1] / l[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn entropy_known_values() {
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
        let h = entropy(&[0.5, 0.5]);
        assert!((h - (2.0_f64).ln()).abs() < 1e-12);
        // Tiny negative dust is clamped rather than producing NaN.
        assert!(entropy(&[1.0, -1e-18]).is_finite());
    }

    #[test]
    fn entropy_uniform_is_max() {
        let u = entropy(&[0.25; 4]);
        let skew = entropy(&[0.7, 0.1, 0.1, 0.1]);
        assert!(u > skew);
        assert!((u - (4.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn argmax_tie_breaks_low_index() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[-1.0]), Some(0));
    }
}
