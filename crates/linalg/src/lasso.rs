//! ℓ1-penalised quadratic programs solved by coordinate descent.
//!
//! The graphical lasso's inner step (Friedman, Hastie & Tibshirani 2008)
//! repeatedly solves
//!
//! ```text
//!   minimize_β  ½ βᵀ V β − sᵀ β + ρ ‖β‖₁
//! ```
//!
//! with `V` positive definite. Coordinate descent has the closed-form update
//! `β_j ← soft(s_j − Σ_{k≠j} V_jk β_k, ρ) / V_jj`, which this module
//! implements with warm starts.

use crate::dense::Matrix;
use crate::error::LinalgError;

/// Soft-thresholding operator `sign(x) · max(|x| − t, 0)`.
#[inline]
pub fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

/// Configuration for [`lasso_quadratic_cd`].
#[derive(Debug, Clone, Copy)]
pub struct LassoConfig {
    /// Stop when the largest coordinate change in a sweep falls below this.
    pub tol: f64,
    /// Maximum number of full coordinate sweeps.
    pub max_sweeps: usize,
}

impl Default for LassoConfig {
    fn default() -> Self {
        LassoConfig {
            tol: 1e-6,
            max_sweeps: 500,
        }
    }
}

/// Solves `minimize_β ½ βᵀVβ − sᵀβ + ρ‖β‖₁` by cyclic coordinate descent.
///
/// `beta` is used as the warm start and overwritten with the solution.
/// Returns the number of sweeps performed.
pub fn lasso_quadratic_cd(
    v: &Matrix,
    s: &[f64],
    rho: f64,
    beta: &mut [f64],
    cfg: LassoConfig,
) -> Result<usize, LinalgError> {
    let p = s.len();
    if v.shape() != (p, p) {
        return Err(LinalgError::ShapeMismatch {
            op: "lasso_quadratic_cd",
            left: v.shape(),
            right: (p, p),
        });
    }
    if beta.len() != p {
        return Err(LinalgError::ShapeMismatch {
            op: "lasso_quadratic_cd(beta)",
            left: (beta.len(), 1),
            right: (p, 1),
        });
    }
    if rho < 0.0 || !rho.is_finite() {
        return Err(LinalgError::NonFinite { what: "rho" });
    }
    if p == 0 {
        return Ok(0);
    }
    for j in 0..p {
        if v[(j, j)] <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: j });
        }
    }

    for sweep in 1..=cfg.max_sweeps {
        let mut max_delta = 0.0_f64;
        for j in 0..p {
            // gradient residual excluding the j-th term
            let row = v.row(j);
            let mut r = s[j];
            for (k, (&vjk, &bk)) in row.iter().zip(beta.iter()).enumerate() {
                if k != j {
                    r -= vjk * bk;
                }
            }
            let new_bj = soft_threshold(r, rho) / v[(j, j)];
            let delta = (new_bj - beta[j]).abs();
            if delta > max_delta {
                max_delta = delta;
            }
            beta[j] = new_bj;
        }
        if max_delta < cfg.tol {
            return Ok(sweep);
        }
    }
    // Coordinate descent on a PD quadratic always converges; hitting the cap
    // means tol was too tight for the conditioning. Report rather than loop.
    Err(LinalgError::DidNotConverge {
        what: "lasso coordinate descent",
        iterations: cfg.max_sweeps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_threshold_regions() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(2.0, 0.0), 2.0);
    }

    #[test]
    fn zero_penalty_solves_linear_system() {
        // With rho=0 the minimiser satisfies V beta = s.
        let v = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let s = vec![1.0, 2.0];
        let mut beta = vec![0.0, 0.0];
        lasso_quadratic_cd(&v, &s, 0.0, &mut beta, LassoConfig::default()).unwrap();
        let residual = v.matvec(&beta).unwrap();
        for (ri, si) in residual.iter().zip(&s) {
            assert!((ri - si).abs() < 1e-5);
        }
    }

    #[test]
    fn large_penalty_zeroes_solution() {
        let v = Matrix::identity(3);
        let s = vec![0.5, -0.2, 0.1];
        let mut beta = vec![1.0; 3];
        lasso_quadratic_cd(&v, &s, 10.0, &mut beta, LassoConfig::default()).unwrap();
        assert_eq!(beta, vec![0.0; 3]);
    }

    #[test]
    fn identity_v_gives_soft_threshold() {
        // V = I => beta_j = soft(s_j, rho).
        let v = Matrix::identity(2);
        let s = vec![1.0, -0.3];
        let mut beta = vec![0.0; 2];
        lasso_quadratic_cd(&v, &s, 0.4, &mut beta, LassoConfig::default()).unwrap();
        assert!((beta[0] - 0.6).abs() < 1e-9);
        assert_eq!(beta[1], 0.0);
    }

    #[test]
    fn satisfies_kkt_conditions() {
        let v = Matrix::from_rows(&[
            vec![3.0, 0.5, 0.2],
            vec![0.5, 2.0, 0.1],
            vec![0.2, 0.1, 1.5],
        ])
        .unwrap();
        let s = vec![1.0, -2.0, 0.05];
        let rho = 0.3;
        let mut beta = vec![0.0; 3];
        lasso_quadratic_cd(&v, &s, rho, &mut beta, LassoConfig::default()).unwrap();
        // KKT: grad_j = (V beta)_j - s_j must satisfy
        //   beta_j != 0  => grad_j = -rho*sign(beta_j)
        //   beta_j == 0  => |grad_j| <= rho
        let g = v.matvec(&beta).unwrap();
        for j in 0..3 {
            let grad = g[j] - s[j];
            if beta[j] != 0.0 {
                assert!((grad + rho * beta[j].signum()).abs() < 1e-5, "j={j}");
            } else {
                assert!(grad.abs() <= rho + 1e-6, "j={j}");
            }
        }
    }

    #[test]
    fn warm_start_converges_faster() {
        let v = Matrix::from_rows(&[vec![2.0, 0.3], vec![0.3, 2.0]]).unwrap();
        let s = vec![1.0, 1.0];
        let mut cold = vec![0.0; 2];
        let sweeps_cold =
            lasso_quadratic_cd(&v, &s, 0.1, &mut cold, LassoConfig::default()).unwrap();
        let mut warm = cold.clone();
        let sweeps_warm =
            lasso_quadratic_cd(&v, &s, 0.1, &mut warm, LassoConfig::default()).unwrap();
        assert!(sweeps_warm <= sweeps_cold);
        // The warm pass may refine by up to the tolerance.
        for (w, c) in warm.iter().zip(&cold) {
            assert!((w - c).abs() < 1e-5);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let v = Matrix::identity(2);
        let mut beta = vec![0.0; 2];
        assert!(lasso_quadratic_cd(&v, &[1.0], 0.1, &mut beta, LassoConfig::default()).is_err());
        assert!(
            lasso_quadratic_cd(&v, &[1.0, 1.0], -0.1, &mut beta, LassoConfig::default()).is_err()
        );
        let zero_diag = Matrix::zeros(2, 2);
        assert!(lasso_quadratic_cd(
            &zero_diag,
            &[1.0, 1.0],
            0.1,
            &mut beta,
            LassoConfig::default()
        )
        .is_err());
    }

    #[test]
    fn empty_problem_is_ok() {
        let v = Matrix::zeros(0, 0);
        let mut beta: Vec<f64> = vec![];
        assert_eq!(
            lasso_quadratic_cd(&v, &[], 0.1, &mut beta, LassoConfig::default()).unwrap(),
            0
        );
    }
}
