//! **adp-wal** — a per-session write-ahead log with point-in-time
//! recovery.
//!
//! Snapshots (`activedp::SessionSnapshot`) make sessions durable at
//! whatever moments someone calls `save`; everything since the last save
//! dies with the process. This crate closes that gap by journalling every
//! completed iteration as a [`StepEvent`](activedp::StepEvent) — query,
//! returned LF, both RNG positions — so a crashed session recovers to its
//! last *committed step*, and any historical commit point can be rebuilt
//! on demand (`Engine::replay_to`).
//!
//! # Layout
//!
//! A journal is a directory:
//!
//! ```text
//! wal-<session>/
//!   manifest.adpwman     # session id, scenario spec, checkpoint, sealed list
//!   seg-000000000033.adpwal   # sealed segment: events 33..=64
//!   open.adpwal          # the append-mode segment being written
//! ```
//!
//! Segments hold length-prefixed, CRC-guarded event records behind the
//! same versioned `adp-wire` envelope as every other artefact in the
//! workspace. Sealed segments and the manifest are written with
//! [`adp_wire::atomic::atomic_write`] (stage + fsync + rename); the open
//! segment is appended in place and fsynced at every commit point.
//!
//! # Crash discipline
//!
//! Every mutation is ordered so that a crash at any instant leaves a
//! recoverable directory:
//!
//! * **Appends** land in `open.adpwal` before being acknowledged; a torn
//!   trailing record (or an uncommitted batch tail) is truncated on
//!   [`Journal::open`], never propagated.
//! * **Sealing** copies the open segment to its sealed name *first*, then
//!   rewrites the manifest, then resets the open file. Recovery drops
//!   open-segment events already covered by a sealed segment, so the
//!   overlap window is harmless, and sealed files the manifest does not
//!   name are ignored and cleaned up.
//! * **Compaction** ([`Journal::checkpoint`]) rewrites the manifest before
//!   deleting covered segment files — a crash in between leaves stale
//!   files, not lost events.
//!
//! Sealed segments were written atomically, so any damage inside one is
//! real corruption and surfaces as a typed [`WalError`] instead of a
//! silent truncation.

pub mod error;
pub mod journal;
pub mod manifest;
pub mod segment;

pub use error::WalError;
pub use journal::{Journal, DEFAULT_SEGMENT_CAP};
pub use manifest::{Manifest, MANIFEST_MAGIC, MANIFEST_VERSION};
pub use segment::{SEGMENT_MAGIC, SEGMENT_VERSION};

/// CRC-32 (IEEE 802.3) lookup table, built at compile time — the workspace
/// is dependency-free, so the checksum is hand-rolled here.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the per-record integrity check in WAL
/// segments.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let base = b"activedp wal record payload".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference);
            }
        }
    }
}
