//! Segment files: a versioned envelope followed by CRC-guarded event
//! records.
//!
//! ```text
//! ADPWSEG\0 | u32 version | record*
//! record := u32 payload_len | payload (StepEvent bytes) | u32 crc32(payload)
//! ```
//!
//! The same byte layout backs both sealed segments (written atomically,
//! decoded *strictly* — any damage is an error) and the open segment
//! (appended in place, decoded *leniently* — a torn trailing record marks
//! where the valid prefix ends and is truncated by recovery).

use crate::crc32;
use crate::error::WalError;
use activedp::StepEvent;
use adp_wire::{read_envelope, write_envelope, Reader, Writer};
use std::path::Path;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"ADPWSEG\0";
/// Current segment format version.
pub const SEGMENT_VERSION: u32 = 1;

/// The envelope bytes a fresh (empty) segment file starts with.
pub fn segment_header() -> Vec<u8> {
    write_envelope(SEGMENT_MAGIC, SEGMENT_VERSION).into_bytes()
}

/// Encodes one event as a `len | payload | crc` record.
pub fn encode_record(event: &StepEvent) -> Vec<u8> {
    let mut payload = Writer::new();
    payload.put(event);
    let payload = payload.into_bytes();
    let mut w = Writer::new();
    w.put_u32(payload.len() as u32);
    w.put_bytes(&payload);
    w.put_u32(crc32(&payload));
    w.into_bytes()
}

/// A decoded segment: its events plus where the valid bytes end.
#[derive(Debug)]
pub struct DecodedSegment {
    /// Every intact record, in file order.
    pub events: Vec<StepEvent>,
    /// Byte length of the valid prefix (envelope + intact records). Equal
    /// to the file length for a clean segment; shorter when a lenient
    /// decode stopped at a torn tail.
    pub valid_len: usize,
}

/// Decodes a segment file's bytes.
///
/// `strict` is for sealed segments: any incomplete or damaged record is a
/// typed [`WalError`]. Lenient mode is for the open segment: decoding
/// stops at the first incomplete/damaged record and reports the valid
/// prefix, which recovery truncates to. The envelope itself is always
/// strict — a file that does not even open as a WAL segment is corrupt in
/// both modes.
pub fn decode_segment(path: &Path, bytes: &[u8], strict: bool) -> Result<DecodedSegment, WalError> {
    let (reader, _version) =
        read_envelope(bytes, SEGMENT_MAGIC, SEGMENT_VERSION).map_err(|source| WalError::Codec {
            path: path.to_path_buf(),
            source,
        })?;
    let header_len = bytes.len() - reader.remaining();
    let mut events = Vec::new();
    let mut offset = header_len;
    loop {
        match decode_one(&bytes[offset..]) {
            RecordOutcome::Done => break,
            RecordOutcome::Record { event, consumed } => {
                events.push(event);
                offset += consumed;
            }
            RecordOutcome::Bad(reason) => {
                if strict {
                    return Err(WalError::Corrupt {
                        path: path.to_path_buf(),
                        reason: format!("record at byte {offset}: {reason}"),
                    });
                }
                break;
            }
        }
    }
    Ok(DecodedSegment {
        events,
        valid_len: offset,
    })
}

enum RecordOutcome {
    /// The buffer is exhausted exactly at a record boundary.
    Done,
    /// One intact record.
    Record { event: StepEvent, consumed: usize },
    /// The bytes do not form a complete, checksummed, decodable record.
    Bad(String),
}

fn decode_one(buf: &[u8]) -> RecordOutcome {
    if buf.is_empty() {
        return RecordOutcome::Done;
    }
    if buf.len() < 4 {
        return RecordOutcome::Bad("incomplete length prefix".into());
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    let total = 4 + len + 4;
    if buf.len() < total {
        return RecordOutcome::Bad(format!(
            "incomplete record: {} of {total} bytes present",
            buf.len()
        ));
    }
    let payload = &buf[4..4 + len];
    let stored = u32::from_le_bytes(buf[4 + len..total].try_into().expect("4 bytes"));
    let computed = crc32(payload);
    if stored != computed {
        return RecordOutcome::Bad(format!(
            "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
        ));
    }
    let mut r = Reader::new(payload);
    let event: StepEvent = match r.get() {
        Ok(event) => event,
        Err(e) => return RecordOutcome::Bad(format!("undecodable payload: {e}")),
    };
    if r.finish().is_err() {
        return RecordOutcome::Bad("trailing bytes inside record payload".into());
    }
    RecordOutcome::Record {
        event,
        consumed: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn event(iteration: usize, commit: bool) -> StepEvent {
        StepEvent {
            iteration,
            query: Some(iteration * 3),
            lf: None,
            sampler_rng: [iteration as u64; 4],
            oracle_rng: [iteration as u64 + 1; 4],
            commit,
            route: None,
        }
    }

    fn segment_bytes(n: usize) -> Vec<u8> {
        let mut bytes = segment_header();
        for i in 1..=n {
            bytes.extend(encode_record(&event(i, i == n)));
        }
        bytes
    }

    fn p() -> PathBuf {
        PathBuf::from("seg-test.adpwal")
    }

    #[test]
    fn records_roundtrip_in_both_modes() {
        let bytes = segment_bytes(4);
        for strict in [true, false] {
            let d = decode_segment(&p(), &bytes, strict).unwrap();
            assert_eq!(d.events.len(), 4);
            assert_eq!(d.valid_len, bytes.len());
            assert_eq!(d.events[0], event(1, false));
            assert_eq!(d.events[3], event(4, true));
        }
    }

    #[test]
    fn torn_tail_truncates_leniently_and_errors_strictly() {
        let whole = segment_bytes(3);
        let two = segment_bytes(2).len();
        // Cut anywhere inside the third record.
        for cut in two + 1..whole.len() {
            let d = decode_segment(&p(), &whole[..cut], false).unwrap();
            assert_eq!(d.events.len(), 2, "cut at {cut}");
            assert_eq!(d.valid_len, two);
            let err = decode_segment(&p(), &whole[..cut], true).unwrap_err();
            assert!(matches!(err, WalError::Corrupt { .. }), "cut at {cut}");
        }
    }

    #[test]
    fn flipped_bits_fail_the_checksum() {
        let mut bytes = segment_bytes(2);
        let n = bytes.len();
        bytes[n - 6] ^= 0x40; // inside the second record's payload
        let err = decode_segment(&p(), &bytes, true).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"));
        // Leniently, the damage truncates the segment there.
        let d = decode_segment(&p(), &bytes, false).unwrap();
        assert_eq!(d.events.len(), 1);
    }

    #[test]
    fn bad_magic_and_future_versions_are_codec_errors() {
        let mut bytes = segment_bytes(1);
        bytes[0] = b'X';
        assert!(matches!(
            decode_segment(&p(), &bytes, false),
            Err(WalError::Codec {
                source: adp_wire::WireError::BadMagic { .. },
                ..
            })
        ));
        let mut bytes = segment_bytes(1);
        bytes[8..12].copy_from_slice(&(SEGMENT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            decode_segment(&p(), &bytes, true),
            Err(WalError::Codec {
                source: adp_wire::WireError::UnknownVersion { .. },
                ..
            })
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected_strictly() {
        let mut bytes = segment_bytes(2);
        bytes.extend_from_slice(&[0xAB; 3]);
        let err = decode_segment(&p(), &bytes, true).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }));
    }
}
