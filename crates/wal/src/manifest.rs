//! The journal manifest: which segments are live and what checkpoint
//! covers everything before them.
//!
//! ```text
//! ADPWMAN\0 | u32 version | u64 session | ScenarioSpec | u64 checkpoint
//!           | u64 n_sealed | (u64 first, u64 last)*
//! ```
//!
//! The manifest is the journal's root pointer: recovery reads it first and
//! trusts only the segment files it names (plus `open.adpwal`). It is
//! rewritten with [`adp_wire::atomic::atomic_write`] on every seal and
//! checkpoint, so readers always observe a complete manifest.

use crate::error::WalError;
use activedp::ScenarioSpec;
use adp_wire::{read_envelope, write_envelope};
use std::path::Path;

/// Magic bytes opening the manifest file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"ADPWMAN\0";
/// Current manifest format version: v2 embeds the current scenario body
/// (oracle + drift fields); v1 manifests embed the pre-oracle body and
/// decode with the simulated-oracle defaults — the manifest's own version
/// stamp is the only record of which spec layout it holds, since the
/// embedded body carries no envelope of its own.
pub const MANIFEST_VERSION: u32 = 2;

/// The decoded manifest (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The hub session this journal belongs to.
    pub session: u64,
    /// The run's full declarative description — enough to rebuild the
    /// session's iteration-0 state even without any snapshot on disk.
    pub spec: ScenarioSpec,
    /// Iteration of the snapshot covering everything before the segments:
    /// events at or below this are compacted away.
    pub checkpoint: usize,
    /// Sealed segments as `(first, last)` iteration ranges, in order. The
    /// open segment is implicit — recovery reads `open.adpwal` whether or
    /// not it exists.
    pub sealed: Vec<(usize, usize)>,
}

impl Manifest {
    /// Serializes the manifest (enveloped; write with `atomic_write`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = write_envelope(MANIFEST_MAGIC, MANIFEST_VERSION);
        w.put_u64(self.session);
        w.put(&self.spec);
        w.put_usize(self.checkpoint);
        w.put_usize(self.sealed.len());
        for &(first, last) in &self.sealed {
            w.put_usize(first);
            w.put_usize(last);
        }
        w.into_bytes()
    }

    /// Decodes and validates manifest bytes read from `path`.
    pub fn from_bytes(path: &Path, bytes: &[u8]) -> Result<Manifest, WalError> {
        let codec = |source| WalError::Codec {
            path: path.to_path_buf(),
            source,
        };
        let corrupt = |reason: String| WalError::Corrupt {
            path: path.to_path_buf(),
            reason,
        };
        let (mut r, version) =
            read_envelope(bytes, MANIFEST_MAGIC, MANIFEST_VERSION).map_err(codec)?;
        let session = r.get_u64().map_err(codec)?;
        let spec: ScenarioSpec = if version >= 2 {
            r.get().map_err(codec)?
        } else {
            ScenarioSpec::decode_pre_oracle_body(&mut r).map_err(codec)?
        };
        let checkpoint = r.get_usize().map_err(codec)?;
        let n = r
            .get_len("manifest sealed-segment list", 16)
            .map_err(codec)?;
        let mut sealed = Vec::with_capacity(n);
        for _ in 0..n {
            let first = r.get_usize().map_err(codec)?;
            let last = r.get_usize().map_err(codec)?;
            sealed.push((first, last));
        }
        r.finish().map_err(codec)?;
        // Ranges must be well-formed and strictly consecutive — anything
        // else means the manifest was not produced by a journal.
        for &(first, last) in &sealed {
            if first == 0 || first > last {
                return Err(corrupt(format!("malformed segment range {first}..={last}")));
            }
        }
        for pair in sealed.windows(2) {
            let ((_, prev_last), (next_first, _)) = (pair[0], pair[1]);
            if next_first != prev_last + 1 {
                return Err(corrupt(format!(
                    "segment ranges are not consecutive: ..={prev_last} then {next_first}.."
                )));
            }
        }
        if let Some(&(first, _)) = sealed.first() {
            if first > checkpoint + 1 {
                return Err(corrupt(format!(
                    "segments start at iteration {first}, leaving a gap after checkpoint {checkpoint}"
                )));
            }
        }
        Ok(Manifest {
            session,
            spec,
            checkpoint,
            sealed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{DatasetId, DatasetSpec, Scale};
    use std::path::PathBuf;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new(DatasetSpec {
            id: DatasetId::Youtube,
            scale: Scale::Tiny,
            seed: 7,
        })
    }

    fn sample() -> Manifest {
        Manifest {
            session: 42,
            spec: spec(),
            checkpoint: 10,
            sealed: vec![(5, 12), (13, 40)],
        }
    }

    fn p() -> PathBuf {
        PathBuf::from("manifest.adpwman")
    }

    #[test]
    fn manifest_roundtrips() {
        let m = sample();
        let bytes = m.to_bytes();
        assert_eq!(Manifest::from_bytes(&p(), &bytes).unwrap(), m);
        let empty = Manifest {
            sealed: vec![],
            ..sample()
        };
        assert_eq!(
            Manifest::from_bytes(&p(), &empty.to_bytes()).unwrap(),
            empty
        );
    }

    #[test]
    fn malformed_manifests_are_typed_errors() {
        // Bad magic.
        let mut bytes = sample().to_bytes();
        bytes[3] = b'!';
        assert!(matches!(
            Manifest::from_bytes(&p(), &bytes),
            Err(WalError::Codec { .. })
        ));
        // Future version.
        let mut bytes = sample().to_bytes();
        bytes[8..12].copy_from_slice(&(MANIFEST_VERSION + 1).to_le_bytes());
        assert!(matches!(
            Manifest::from_bytes(&p(), &bytes),
            Err(WalError::Codec { .. })
        ));
        // Trailing garbage.
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Manifest::from_bytes(&p(), &bytes),
            Err(WalError::Codec { .. })
        ));
        // Truncation anywhere is an error of some kind.
        let whole = sample().to_bytes();
        for cut in 0..whole.len() {
            assert!(Manifest::from_bytes(&p(), &whole[..cut]).is_err());
        }
        // Non-consecutive ranges.
        let gapped = Manifest {
            sealed: vec![(5, 12), (20, 30)],
            ..sample()
        };
        let err = Manifest::from_bytes(&p(), &gapped.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("not consecutive"));
        // Inverted range.
        let inverted = Manifest {
            sealed: vec![(12, 5)],
            ..sample()
        };
        assert!(Manifest::from_bytes(&p(), &inverted.to_bytes()).is_err());
        // A gap between the checkpoint and the first segment.
        let late = Manifest {
            checkpoint: 2,
            sealed: vec![(5, 12)],
            ..sample()
        };
        let err = Manifest::from_bytes(&p(), &late.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("gap after checkpoint"));
    }
}
