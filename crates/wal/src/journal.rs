//! The [`Journal`]: one session's append-only event log on disk.
//!
//! See the [crate docs](crate) for the directory layout and crash
//! discipline. A `Journal` is the single writer for its directory; the
//! serving hub keeps one per journalled session and drives it from the
//! engine's `StepObserver` event hook.

use crate::error::WalError;
use crate::manifest::Manifest;
use crate::segment::{decode_segment, encode_record, segment_header};
use activedp::{ScenarioSpec, StepEvent};
use adp_wire::atomic::atomic_write;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// How many records the open segment accumulates before sealing (at the
/// next commit point). Segments bound both the rewrite cost of a seal and
/// the granularity of compaction.
pub const DEFAULT_SEGMENT_CAP: usize = 32;

const MANIFEST_FILE: &str = "manifest.adpwman";
const OPEN_FILE: &str = "open.adpwal";
const SEGMENT_EXT: &str = "adpwal";

/// One session's write-ahead log: a manifest, sealed segments, and the
/// open segment this handle appends to.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    manifest: Manifest,
    /// Events currently in the open segment, in append order.
    open_events: Vec<StepEvent>,
    /// Byte image of `open.adpwal` (envelope + records) — what a seal
    /// writes to the sealed name.
    open_bytes: Vec<u8>,
    open_file: File,
    /// Iteration of the last commit-point event made durable (the
    /// checkpoint when no events are live).
    last_committed: usize,
    segment_cap: usize,
}

impl Journal {
    /// Creates a fresh journal in `dir` (created if missing; any previous
    /// journal files there are removed). `checkpoint` is the iteration of
    /// the snapshot that covers everything before the log — 0 for a
    /// brand-new session, whose iteration-0 state the manifest's `spec`
    /// alone can rebuild.
    pub fn create(
        dir: &Path,
        session: u64,
        spec: ScenarioSpec,
        checkpoint: usize,
    ) -> Result<Journal, WalError> {
        let io = |path: &Path| {
            let path = path.to_path_buf();
            move |source| WalError::Io { path, source }
        };
        fs::create_dir_all(dir).map_err(io(dir))?;
        // Clear out any earlier journal so stale segments cannot shadow
        // the new log.
        for entry in fs::read_dir(dir).map_err(io(dir))? {
            let path = entry.map_err(io(dir))?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == MANIFEST_FILE || name == OPEN_FILE || is_segment_name(name) {
                match fs::remove_file(&path) {
                    // Already gone (e.g. a concurrent cleanup): the goal —
                    // no stale file under that name — is met either way.
                    Err(source) if source.kind() != std::io::ErrorKind::NotFound => {
                        return Err(io(&path)(source))
                    }
                    _ => {}
                }
            }
        }
        let manifest = Manifest {
            session,
            spec,
            checkpoint,
            sealed: vec![],
        };
        let manifest_path = dir.join(MANIFEST_FILE);
        atomic_write(&manifest_path, &manifest.to_bytes()).map_err(io(&manifest_path))?;
        let (open_file, open_bytes) = fresh_open_segment(dir)?;
        Ok(Journal {
            dir: dir.to_path_buf(),
            manifest,
            open_events: vec![],
            open_bytes,
            open_file,
            last_committed: checkpoint,
            segment_cap: DEFAULT_SEGMENT_CAP,
        })
    }

    /// Opens (and recovers) an existing journal directory.
    ///
    /// Sealed segments are decoded strictly — they were written atomically,
    /// so damage inside one is real corruption. The open segment is
    /// decoded leniently: a torn trailing record and any uncommitted batch
    /// tail are truncated, and events already covered by the checkpoint or
    /// a sealed segment (the seal-in-progress overlap window) are dropped.
    /// Segment files the manifest does not name are deleted best-effort.
    pub fn open(dir: &Path) -> Result<Journal, WalError> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest_bytes = fs::read(&manifest_path).map_err(|source| {
            if source.kind() == std::io::ErrorKind::NotFound {
                WalError::Corrupt {
                    path: manifest_path.clone(),
                    reason: "journal directory has no manifest".into(),
                }
            } else {
                WalError::Io {
                    path: manifest_path.clone(),
                    source,
                }
            }
        })?;
        let manifest = Manifest::from_bytes(&manifest_path, &manifest_bytes)?;

        // Sealed segments: strict, and each must match its manifest entry.
        let mut durable = manifest.checkpoint;
        for &(first, last) in &manifest.sealed {
            let path = segment_path(dir, first);
            let bytes = fs::read(&path).map_err(|source| WalError::Io {
                path: path.clone(),
                source,
            })?;
            let decoded = decode_segment(&path, &bytes, true)?;
            check_range(&path, &decoded.events, first, last)?;
            durable = last;
        }

        // The open segment: lenient decode, then recovery trims.
        let open_path = dir.join(OPEN_FILE);
        let mut open_events = Vec::new();
        match fs::read(&open_path) {
            Err(source) if source.kind() == std::io::ErrorKind::NotFound => {}
            Err(source) => {
                return Err(WalError::Io {
                    path: open_path,
                    source,
                })
            }
            Ok(bytes) => {
                let decoded = decode_segment(&open_path, &bytes, false)?;
                open_events = decoded.events;
            }
        }
        // Drop events a sealed segment or the checkpoint already covers
        // (a crash between sealing and the open-segment reset leaves the
        // two overlapping), then the uncommitted tail.
        open_events.retain(|e| e.iteration > durable);
        while open_events.last().is_some_and(|e| !e.commit) {
            open_events.pop();
        }
        // What survives must continue the journal without a gap.
        if let Some(first) = open_events.first() {
            if first.iteration != durable + 1 {
                return Err(WalError::Corrupt {
                    path: open_path.clone(),
                    reason: format!(
                        "open segment starts at iteration {}, journal covers up to {durable}",
                        first.iteration
                    ),
                });
            }
        }
        for pair in open_events.windows(2) {
            if pair[1].iteration != pair[0].iteration + 1 {
                return Err(WalError::Corrupt {
                    path: open_path.clone(),
                    reason: format!(
                        "open segment skips from iteration {} to {}",
                        pair[0].iteration, pair[1].iteration
                    ),
                });
            }
        }
        let last_committed = open_events.last().map_or(durable, |e| e.iteration);

        // Rewrite the open segment to exactly the surviving records, so
        // the append handle continues from a clean boundary.
        let mut open_bytes = segment_header();
        for event in &open_events {
            open_bytes.extend(encode_record(event));
        }
        atomic_write(&open_path, &open_bytes).map_err(|source| WalError::Io {
            path: open_path.clone(),
            source,
        })?;
        let open_file = OpenOptions::new()
            .append(true)
            .open(&open_path)
            .map_err(|source| WalError::Io {
                path: open_path,
                source,
            })?;

        // Unlisted segment files are leftovers of an interrupted seal or
        // compaction — harmless, so cleanup is best-effort.
        if let Ok(entries) = fs::read_dir(dir) {
            let listed: Vec<PathBuf> = manifest
                .sealed
                .iter()
                .map(|&(first, _)| segment_path(dir, first))
                .collect();
            for entry in entries.flatten() {
                let path = entry.path();
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if is_segment_name(name) && !listed.contains(&path) {
                    let _ = fs::remove_file(&path);
                }
            }
        }

        Ok(Journal {
            dir: dir.to_path_buf(),
            manifest,
            open_events,
            open_bytes,
            open_file,
            last_committed,
            segment_cap: DEFAULT_SEGMENT_CAP,
        })
    }

    /// Appends one event. The event must continue the iteration sequence
    /// exactly ([`WalError::OutOfOrder`] otherwise). Commit-point events
    /// are fsynced before returning — and may seal the open segment when
    /// it has reached the segment cap.
    pub fn append(&mut self, event: &StepEvent) -> Result<(), WalError> {
        let expected = self.next_iteration();
        if event.iteration != expected {
            return Err(WalError::OutOfOrder {
                path: self.dir.clone(),
                expected,
                found: event.iteration,
            });
        }
        let record = encode_record(event);
        let open_path = self.dir.join(OPEN_FILE);
        let io = |source| WalError::Io {
            path: open_path.clone(),
            source,
        };
        self.open_file.write_all(&record).map_err(io)?;
        self.open_bytes.extend_from_slice(&record);
        self.open_events.push(event.clone());
        if event.commit {
            // Commit points are the only recovery targets, so they are the
            // only appends worth the fsync; an uncommitted tail would be
            // truncated at recovery anyway.
            self.open_file.sync_all().map_err(io)?;
            self.last_committed = event.iteration;
            if self.open_events.len() >= self.segment_cap {
                self.seal()?;
            }
        }
        Ok(())
    }

    /// Records that a snapshot at `iteration` now covers the log's prefix,
    /// and compacts: sealed segments (and an open segment) entirely at or
    /// below it are deleted. The manifest is rewritten *before* any file
    /// is removed, so a crash mid-compaction leaves stale-but-ignored
    /// files rather than a manifest naming missing ones.
    pub fn checkpoint(&mut self, iteration: usize) -> Result<(), WalError> {
        if iteration < self.manifest.checkpoint {
            return Err(WalError::OutOfOrder {
                path: self.dir.clone(),
                expected: self.manifest.checkpoint,
                found: iteration,
            });
        }
        let covered: Vec<(usize, usize)> = self
            .manifest
            .sealed
            .iter()
            .copied()
            .filter(|&(_, last)| last <= iteration)
            .collect();
        self.manifest.checkpoint = iteration;
        self.manifest.sealed.retain(|&(_, last)| last > iteration);
        self.write_manifest()?;
        for (first, _) in covered {
            let _ = fs::remove_file(segment_path(&self.dir, first));
        }
        if self
            .open_events
            .last()
            .is_some_and(|e| e.iteration <= iteration)
        {
            self.reset_open_segment()?;
        }
        self.last_committed = self.last_committed.max(iteration);
        Ok(())
    }

    /// Every live event past the checkpoint, in iteration order — what
    /// `Engine::replay_to` folds onto the covering snapshot. Reads sealed
    /// segments back from disk (strictly); the open segment comes from
    /// memory.
    pub fn events(&self) -> Result<Vec<StepEvent>, WalError> {
        let mut events = Vec::new();
        for &(first, _) in &self.manifest.sealed {
            let path = segment_path(&self.dir, first);
            let bytes = fs::read(&path).map_err(|source| WalError::Io {
                path: path.clone(),
                source,
            })?;
            let decoded = decode_segment(&path, &bytes, true)?;
            events.extend(
                decoded
                    .events
                    .into_iter()
                    .filter(|e| e.iteration > self.manifest.checkpoint),
            );
        }
        events.extend(
            self.open_events
                .iter()
                .filter(|e| e.iteration > self.manifest.checkpoint)
                .cloned(),
        );
        Ok(events)
    }

    /// The session id this journal belongs to.
    pub fn session(&self) -> u64 {
        self.manifest.session
    }

    /// The run description embedded in the manifest.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.manifest.spec
    }

    /// Iteration of the snapshot covering the compacted prefix.
    pub fn checkpoint_iteration(&self) -> usize {
        self.manifest.checkpoint
    }

    /// The last iteration durable on disk as a commit point — where
    /// recovery lands after a crash right now.
    pub fn durable_iteration(&self) -> usize {
        self.last_committed
    }

    /// Number of live segments (sealed + a non-empty open segment).
    pub fn live_segments(&self) -> usize {
        self.manifest.sealed.len() + usize::from(!self.open_events.is_empty())
    }

    /// The journal's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Overrides [`DEFAULT_SEGMENT_CAP`] (minimum 1) — mostly for tests
    /// that want to exercise sealing without thousands of appends.
    pub fn set_segment_cap(&mut self, cap: usize) {
        self.segment_cap = cap.max(1);
    }

    fn next_iteration(&self) -> usize {
        self.open_events
            .last()
            .map(|e| e.iteration)
            .or_else(|| self.manifest.sealed.last().map(|&(_, last)| last))
            .unwrap_or(self.manifest.checkpoint)
            + 1
    }

    /// Seals the open segment: its bytes land under the sealed name, the
    /// manifest adopts the range, and only then is the open file reset —
    /// see the crate docs for why this order survives a crash anywhere.
    fn seal(&mut self) -> Result<(), WalError> {
        debug_assert!(self.open_events.last().is_some_and(|e| e.commit));
        let first = self.open_events[0].iteration;
        let last = self.open_events[self.open_events.len() - 1].iteration;
        let path = segment_path(&self.dir, first);
        atomic_write(&path, &self.open_bytes).map_err(|source| WalError::Io { path, source })?;
        self.manifest.sealed.push((first, last));
        self.write_manifest()?;
        self.reset_open_segment()
    }

    fn reset_open_segment(&mut self) -> Result<(), WalError> {
        let (open_file, open_bytes) = fresh_open_segment(&self.dir)?;
        self.open_file = open_file;
        self.open_bytes = open_bytes;
        self.open_events.clear();
        Ok(())
    }

    fn write_manifest(&self) -> Result<(), WalError> {
        let path = self.dir.join(MANIFEST_FILE);
        atomic_write(&path, &self.manifest.to_bytes())
            .map_err(|source| WalError::Io { path, source })
    }
}

/// Creates a fresh `open.adpwal` holding just the envelope and returns an
/// append handle plus the byte image.
fn fresh_open_segment(dir: &Path) -> Result<(File, Vec<u8>), WalError> {
    let path = dir.join(OPEN_FILE);
    let bytes = segment_header();
    let io = |source| WalError::Io {
        path: path.clone(),
        source,
    };
    atomic_write(&path, &bytes).map_err(io)?;
    let file = OpenOptions::new().append(true).open(&path).map_err(io)?;
    Ok((file, bytes))
}

fn segment_path(dir: &Path, first: usize) -> PathBuf {
    dir.join(format!("seg-{first:012}.{SEGMENT_EXT}"))
}

fn is_segment_name(name: &str) -> bool {
    name.starts_with("seg-") && name.ends_with(".adpwal")
}

fn check_range(
    path: &Path,
    events: &[StepEvent],
    first: usize,
    last: usize,
) -> Result<(), WalError> {
    let corrupt = |reason: String| WalError::Corrupt {
        path: path.to_path_buf(),
        reason,
    };
    let (head, tail) = match (events.first(), events.last()) {
        (Some(head), Some(tail)) => (head, tail),
        _ => return Err(corrupt("sealed segment holds no events".into())),
    };
    if head.iteration != first || tail.iteration != last {
        return Err(corrupt(format!(
            "sealed segment covers {}..={}, manifest says {first}..={last}",
            head.iteration, tail.iteration
        )));
    }
    for pair in events.windows(2) {
        if pair[1].iteration != pair[0].iteration + 1 {
            return Err(corrupt(format!(
                "sealed segment skips from iteration {} to {}",
                pair[0].iteration, pair[1].iteration
            )));
        }
    }
    if !tail.commit {
        return Err(corrupt(format!(
            "sealed segment ends at iteration {last} without a commit point"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{DatasetId, DatasetSpec, Scale};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new(DatasetSpec {
            id: DatasetId::Youtube,
            scale: Scale::Tiny,
            seed: 7,
        })
    }

    fn event(iteration: usize, commit: bool) -> StepEvent {
        StepEvent {
            iteration,
            query: Some(iteration),
            lf: None,
            sampler_rng: [iteration as u64; 4],
            oracle_rng: [!(iteration as u64); 4],
            commit,
            route: None,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "adp-wal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn append_range(j: &mut Journal, range: std::ops::RangeInclusive<usize>) {
        for i in range {
            j.append(&event(i, true)).unwrap();
        }
    }

    #[test]
    fn journal_roundtrips_across_reopen() {
        let dir = tmp_dir("roundtrip");
        let mut j = Journal::create(&dir, 9, spec(), 0).unwrap();
        j.set_segment_cap(3);
        append_range(&mut j, 1..=7);
        assert_eq!(j.durable_iteration(), 7);
        assert_eq!(j.live_segments(), 3); // 1..=3, 4..=6 sealed + open 7
        drop(j);

        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.session(), 9);
        assert_eq!(j.spec(), &spec());
        assert_eq!(j.checkpoint_iteration(), 0);
        assert_eq!(j.durable_iteration(), 7);
        let events = j.events().unwrap();
        assert_eq!(events.len(), 7);
        assert_eq!(events, (1..=7).map(|i| event(i, true)).collect::<Vec<_>>());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_must_be_contiguous() {
        let dir = tmp_dir("order");
        let mut j = Journal::create(&dir, 1, spec(), 4).unwrap();
        // First append continues the checkpoint.
        let err = j.append(&event(4, true)).unwrap_err();
        assert!(matches!(
            err,
            WalError::OutOfOrder {
                expected: 5,
                found: 4,
                ..
            }
        ));
        j.append(&event(5, true)).unwrap();
        let err = j.append(&event(7, true)).unwrap_err();
        assert!(matches!(
            err,
            WalError::OutOfOrder {
                expected: 6,
                found: 7,
                ..
            }
        ));
        // Double-append of the same iteration is rejected too.
        let err = j.append(&event(5, true)).unwrap_err();
        assert!(matches!(err, WalError::OutOfOrder { expected: 6, .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_open_tail_recovers_to_the_last_complete_record() {
        let dir = tmp_dir("torn");
        let mut j = Journal::create(&dir, 2, spec(), 0).unwrap();
        append_range(&mut j, 1..=4);
        drop(j);
        let open = dir.join(OPEN_FILE);
        let whole = fs::read(&open).unwrap();
        // Tear the file anywhere inside the final record: recovery must
        // land on iteration 3.
        let three = {
            let d = decode_segment(&open, &whole, false).unwrap();
            let mut bytes = segment_header();
            for e in &d.events[..3] {
                bytes.extend(encode_record(e));
            }
            bytes.len()
        };
        for cut in [three + 1, three + 5, whole.len() - 1] {
            fs::write(&open, &whole[..cut]).unwrap();
            let j = Journal::open(&dir).unwrap();
            assert_eq!(j.durable_iteration(), 3, "cut at {cut}");
            assert_eq!(j.events().unwrap().len(), 3);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_tail_is_truncated_on_recovery() {
        let dir = tmp_dir("uncommitted");
        let mut j = Journal::create(&dir, 3, spec(), 0).unwrap();
        j.append(&event(1, true)).unwrap();
        j.append(&event(2, true)).unwrap();
        // A batch in flight: events 3 and 4 never reached their commit.
        j.append(&event(3, false)).unwrap();
        j.append(&event(4, false)).unwrap();
        assert_eq!(j.durable_iteration(), 2);
        drop(j);
        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.durable_iteration(), 2);
        assert_eq!(j.events().unwrap().len(), 2);
        // And the truncation is physical: a fresh append of iteration 3
        // continues cleanly.
        let mut j = j;
        j.append(&event(3, true)).unwrap();
        assert_eq!(j.durable_iteration(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_sealed_segment_is_a_typed_error() {
        let dir = tmp_dir("corrupt");
        let mut j = Journal::create(&dir, 4, spec(), 0).unwrap();
        j.set_segment_cap(2);
        append_range(&mut j, 1..=3); // seals 1..=2
        drop(j);
        let seg = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0x01;
        fs::write(&seg, &bytes).unwrap();
        assert!(matches!(
            Journal::open(&dir),
            Err(WalError::Corrupt { .. } | WalError::Codec { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_and_missing_segment_are_typed_errors() {
        let dir = tmp_dir("missing");
        let mut j = Journal::create(&dir, 5, spec(), 0).unwrap();
        j.set_segment_cap(2);
        append_range(&mut j, 1..=2);
        drop(j);
        fs::remove_file(segment_path(&dir, 1)).unwrap();
        assert!(matches!(Journal::open(&dir), Err(WalError::Io { .. })));
        fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        let err = Journal::open(&dir).unwrap_err();
        assert!(err.to_string().contains("no manifest"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_covered_segments() {
        let dir = tmp_dir("compact");
        let mut j = Journal::create(&dir, 6, spec(), 0).unwrap();
        j.set_segment_cap(2);
        append_range(&mut j, 1..=7); // sealed: 1..=2, 3..=4, 5..=6; open: 7
        assert_eq!(j.live_segments(), 4);
        j.checkpoint(4).unwrap();
        assert_eq!(j.checkpoint_iteration(), 4);
        assert_eq!(j.live_segments(), 2);
        assert!(!segment_path(&dir, 1).exists());
        assert!(!segment_path(&dir, 3).exists());
        assert!(segment_path(&dir, 5).exists());
        assert_eq!(
            j.events().unwrap(),
            vec![event(5, true), event(6, true), event(7, true)]
        );
        // Checkpoint at the durable tip drops the open segment too.
        j.checkpoint(7).unwrap();
        assert_eq!(j.live_segments(), 0);
        assert!(j.events().unwrap().is_empty());
        // Appends continue from the checkpoint; reopen agrees.
        j.append(&event(8, true)).unwrap();
        drop(j);
        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.checkpoint_iteration(), 7);
        assert_eq!(j.events().unwrap(), vec![event(8, true)]);
        // Moving the checkpoint backwards is rejected.
        let mut j = j;
        let err = j.checkpoint(3).unwrap_err();
        assert!(matches!(err, WalError::OutOfOrder { expected: 7, .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_seal_recovers_without_duplicates() {
        let dir = tmp_dir("midseal");
        let mut j = Journal::create(&dir, 7, spec(), 0).unwrap();
        append_range(&mut j, 1..=3);
        drop(j);
        // Simulate a crash *between* writing the sealed file and updating
        // the manifest: the sealed name exists but is unlisted, and the
        // open segment still holds the same events.
        let open_bytes = fs::read(dir.join(OPEN_FILE)).unwrap();
        fs::write(segment_path(&dir, 1), &open_bytes).unwrap();
        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.events().unwrap().len(), 3);
        assert_eq!(j.live_segments(), 1);
        // The unlisted file was cleaned up.
        assert!(!segment_path(&dir, 1).exists());
        drop(j);

        // And the other side of the window: manifest updated, open not yet
        // reset — the open segment fully duplicates the sealed one.
        let dir2 = tmp_dir("midseal2");
        let mut j = Journal::create(&dir2, 7, spec(), 0).unwrap();
        j.set_segment_cap(3);
        append_range(&mut j, 1..=3); // seals 1..=3, resets open
        drop(j);
        fs::write(
            dir2.join(OPEN_FILE),
            fs::read(segment_path(&dir2, 1)).unwrap(),
        )
        .unwrap();
        let j = Journal::open(&dir2).unwrap();
        assert_eq!(j.events().unwrap().len(), 3);
        assert_eq!(j.durable_iteration(), 3);
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn open_segment_gap_after_coverage_is_corrupt() {
        let dir = tmp_dir("gap");
        let mut j = Journal::create(&dir, 8, spec(), 0).unwrap();
        append_range(&mut j, 1..=2);
        drop(j);
        // Rewrite the open segment so it starts at iteration 5: the
        // journal would silently skip 3 and 4.
        let mut bytes = segment_header();
        for i in 5..=6 {
            bytes.extend(encode_record(&event(i, true)));
        }
        fs::write(dir.join(OPEN_FILE), &bytes).unwrap();
        let err = Journal::open(&dir).unwrap_err();
        assert!(err.to_string().contains("starts at iteration 5"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_replaces_a_previous_journal() {
        let dir = tmp_dir("recreate");
        let mut j = Journal::create(&dir, 10, spec(), 0).unwrap();
        j.set_segment_cap(2);
        append_range(&mut j, 1..=5);
        drop(j);
        let j = Journal::create(&dir, 11, spec(), 3).unwrap();
        assert_eq!(j.session(), 11);
        assert_eq!(j.checkpoint_iteration(), 3);
        assert_eq!(j.live_segments(), 0);
        assert!(j.events().unwrap().is_empty());
        drop(j);
        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.session(), 11);
        assert_eq!(j.durable_iteration(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }
}
