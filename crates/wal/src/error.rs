//! Typed WAL failures, each carrying the file it arose from.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Everything that can go wrong reading or writing a journal.
#[derive(Debug)]
pub enum WalError {
    /// The filesystem failed underneath the journal.
    Io {
        /// File (or directory) the operation touched.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A file failed wire-level decoding: bad magic, an unknown version,
    /// or a malformed payload.
    Codec {
        /// The file that failed to decode.
        path: PathBuf,
        /// The underlying codec error.
        source: adp_wire::WireError,
    },
    /// A file decoded but its contents are inconsistent — a failed
    /// checksum, a sealed segment whose events do not match the manifest,
    /// trailing garbage, a missing manifest.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What was wrong with it.
        reason: String,
    },
    /// An append or checkpoint did not continue the journal's iteration
    /// sequence (double-append, skipped step, or a checkpoint moving
    /// backwards).
    OutOfOrder {
        /// The journal directory.
        path: PathBuf,
        /// The iteration the journal expected next.
        expected: usize,
        /// The iteration it was handed.
        found: usize,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { path, source } => {
                write!(f, "wal io error on {}: {source}", path.display())
            }
            WalError::Codec { path, source } => {
                write!(f, "wal codec error in {}: {source}", path.display())
            }
            WalError::Corrupt { path, reason } => {
                write!(f, "corrupt wal file {}: {reason}", path.display())
            }
            WalError::OutOfOrder {
                path,
                expected,
                found,
            } => write!(
                f,
                "out-of-order wal operation on {}: expected iteration {expected}, got {found}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            WalError::Codec { source, .. } => Some(source),
            WalError::Corrupt { .. } | WalError::OutOfOrder { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_names_the_file_and_sources_chain() {
        let e = WalError::Corrupt {
            path: PathBuf::from("/j/seg-1.adpwal"),
            reason: "checksum mismatch".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("seg-1.adpwal") && msg.contains("checksum"));
        assert!(e.source().is_none());

        let io = WalError::Io {
            path: PathBuf::from("/j/open.adpwal"),
            source: io::Error::new(io::ErrorKind::PermissionDenied, "denied"),
        };
        assert!(io.source().is_some());

        let ooo = WalError::OutOfOrder {
            path: PathBuf::from("/j"),
            expected: 5,
            found: 9,
        };
        let msg = ooo.to_string();
        assert!(msg.contains('5') && msg.contains('9'));
    }
}
