//! Error type for label-function operations.

use std::fmt;

/// Errors produced by `adp-lf`.
#[derive(Debug, Clone, PartialEq)]
pub enum LfError {
    /// An LF family was applied to an incompatible dataset (e.g. a keyword
    /// LF on tabular data).
    IncompatibleDataset {
        /// What was attempted.
        what: &'static str,
    },
    /// Index out of range.
    IndexOutOfRange {
        /// Offending index.
        index: usize,
        /// Container length.
        len: usize,
    },
    /// The label matrix would be malformed.
    BadMatrix {
        /// Reason.
        reason: String,
    },
}

impl fmt::Display for LfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LfError::IncompatibleDataset { what } => {
                write!(f, "incompatible dataset for {what}")
            }
            LfError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range (len {len})")
            }
            LfError::BadMatrix { reason } => write!(f, "bad label matrix: {reason}"),
        }
    }
}

impl std::error::Error for LfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(LfError::IndexOutOfRange { index: 5, len: 3 }
            .to_string()
            .contains("5"));
    }
}
