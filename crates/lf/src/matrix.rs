//! The weak-label matrix `W` with `W[i][j] = λ_j(x_i)` (paper §2.1).

use crate::error::LfError;
use crate::lf::{LabelFunction, ABSTAIN};
use adp_data::Dataset;
use adp_linalg::parallel::{self, Execution};

/// Instances per parallel chunk when evaluating LFs over a dataset.
const APPLY_CHUNK: usize = 1024;
/// Minimum instance count before threads pay for themselves.
const MIN_PARALLEL: usize = 4096;

/// Dense n×m matrix of weak labels (`-1` = abstain), stored row-major in
/// `i8` — every paper task is binary and class counts stay below 128.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelMatrix {
    n: usize,
    m: usize,
    data: Vec<i8>,
}

impl LabelMatrix {
    /// An n×0 matrix (no LFs yet).
    pub fn empty(n: usize) -> Self {
        LabelMatrix {
            n,
            m: 0,
            data: vec![],
        }
    }

    /// Builds a matrix directly from vote rows (all rows must share a
    /// length). Useful for tests and for models that synthesise votes.
    pub fn from_votes(rows: &[Vec<i8>]) -> Result<Self, LfError> {
        let n = rows.len();
        let m = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n * m);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != m {
                return Err(LfError::BadMatrix {
                    reason: format!("row {i} has {} votes, expected {m}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(LabelMatrix { n, m, data })
    }

    /// Evaluates `lfs` on every instance of `dataset`. LF application is
    /// embarrassingly parallel over instances, so large datasets run
    /// chunk-parallel (identical output either way — votes are integers).
    pub fn from_lfs(lfs: &[LabelFunction], dataset: &Dataset) -> Self {
        Self::from_lfs_exec(lfs, dataset, parallel::auto(dataset.len(), MIN_PARALLEL))
    }

    /// [`LabelMatrix::from_lfs`] with explicit scheduling (benches and the
    /// behaviour-identity tests drive both paths).
    pub fn from_lfs_exec(lfs: &[LabelFunction], dataset: &Dataset, exec: Execution) -> Self {
        let n = dataset.len();
        let m = lfs.len();
        let chunks = parallel::map_chunks(n, APPLY_CHUNK, exec, |rows| {
            let mut part = Vec::with_capacity(rows.len() * m);
            for i in rows {
                part.extend(lfs.iter().map(|lf| lf.apply(dataset, i)));
            }
            part
        });
        let mut data = Vec::with_capacity(n * m);
        for part in chunks {
            data.extend_from_slice(&part);
        }
        LabelMatrix { n, m, data }
    }

    /// Rebuilds a matrix from its raw parts (the inverse of
    /// [`LabelMatrix::votes`]), for snapshot decoding. The multiply is
    /// checked: decoded dimensions may be hostile, and an overflow must be
    /// the same typed error as any other shape mismatch, not a panic (or,
    /// worse, a wrapped product that happens to match `data.len()`).
    pub fn from_raw(n: usize, m: usize, data: Vec<i8>) -> Result<Self, LfError> {
        if n.checked_mul(m) != Some(data.len()) {
            return Err(LfError::BadMatrix {
                reason: format!("{} votes cannot fill an {n}x{m} matrix", data.len()),
            });
        }
        Ok(LabelMatrix { n, m, data })
    }

    /// The raw row-major vote storage (length `n_instances × n_lfs`), for
    /// snapshot encoding.
    pub fn votes(&self) -> &[i8] {
        &self.data
    }

    /// Number of instances.
    pub fn n_instances(&self) -> usize {
        self.n
    }

    /// Number of LFs.
    pub fn n_lfs(&self) -> usize {
        self.m
    }

    /// Row `i`: one vote per LF.
    #[inline]
    pub fn row(&self, i: usize) -> &[i8] {
        &self.data[i * self.m..(i + 1) * self.m]
    }

    /// Vote of LF `j` on instance `i`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> i8 {
        self.data[i * self.m + j]
    }

    /// Overwrites a vote (used by the Revising-LF baseline, which corrects
    /// LF outputs on user-labelled instances).
    pub fn set(&mut self, i: usize, j: usize, v: i8) -> Result<(), LfError> {
        if i >= self.n {
            return Err(LfError::IndexOutOfRange {
                index: i,
                len: self.n,
            });
        }
        if j >= self.m {
            return Err(LfError::IndexOutOfRange {
                index: j,
                len: self.m,
            });
        }
        self.data[i * self.m + j] = v;
        Ok(())
    }

    /// Appends one LF evaluated on `dataset` as a new column.
    pub fn push_lf(&mut self, lf: &LabelFunction, dataset: &Dataset) -> Result<(), LfError> {
        if dataset.len() != self.n {
            return Err(LfError::BadMatrix {
                reason: format!("dataset has {} rows, matrix has {}", dataset.len(), self.n),
            });
        }
        // The LF evaluation dominates (the rest is a copy), and it is
        // independent per instance — run it chunk-parallel on large splits.
        let votes: Vec<i8> = parallel::map_chunks(
            self.n,
            APPLY_CHUNK,
            parallel::auto(self.n, MIN_PARALLEL),
            |rows| rows.map(|i| lf.apply(dataset, i)).collect::<Vec<_>>(),
        )
        .into_iter()
        .flatten()
        .collect();
        let m_new = self.m + 1;
        let mut data = vec![ABSTAIN; self.n * m_new];
        for i in 0..self.n {
            data[i * m_new..i * m_new + self.m].copy_from_slice(self.row(i));
            data[i * m_new + self.m] = votes[i];
        }
        self.m = m_new;
        self.data = data;
        Ok(())
    }

    /// New matrix keeping only the columns in `cols` (in order).
    pub fn select_columns(&self, cols: &[usize]) -> Result<LabelMatrix, LfError> {
        for &c in cols {
            if c >= self.m {
                return Err(LfError::IndexOutOfRange {
                    index: c,
                    len: self.m,
                });
            }
        }
        let m = cols.len();
        let mut data = Vec::with_capacity(self.n * m);
        for i in 0..self.n {
            let row = self.row(i);
            data.extend(cols.iter().map(|&c| row[c]));
        }
        Ok(LabelMatrix { n: self.n, m, data })
    }

    /// New matrix keeping only the rows in `rows` (in order).
    pub fn select_rows(&self, rows: &[usize]) -> Result<LabelMatrix, LfError> {
        for &r in rows {
            if r >= self.n {
                return Err(LfError::IndexOutOfRange {
                    index: r,
                    len: self.n,
                });
            }
        }
        let mut data = Vec::with_capacity(rows.len() * self.m);
        for &r in rows {
            data.extend_from_slice(self.row(r));
        }
        Ok(LabelMatrix {
            n: rows.len(),
            m: self.m,
            data,
        })
    }

    /// `true` when at least one LF fires on instance `i`.
    #[inline]
    pub fn has_vote(&self, i: usize) -> bool {
        self.row(i).iter().any(|&v| v != ABSTAIN)
    }

    /// Fraction of instances with at least one non-abstain vote.
    pub fn coverage(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        (0..self.n).filter(|&i| self.has_vote(i)).count() as f64 / self.n as f64
    }

    /// Fraction of instances LF `j` fires on.
    pub fn lf_coverage(&self, j: usize) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        (0..self.n).filter(|&i| self.get(i, j) != ABSTAIN).count() as f64 / self.n as f64
    }

    /// Accuracy of LF `j` against `labels` over its covered instances;
    /// `None` when it never fires.
    pub fn lf_accuracy(&self, j: usize, labels: &[usize]) -> Option<f64> {
        let mut fired = 0usize;
        let mut correct = 0usize;
        for i in 0..self.n {
            let v = self.get(i, j);
            if v != ABSTAIN {
                fired += 1;
                if v as usize == labels[i] {
                    correct += 1;
                }
            }
        }
        (fired > 0).then(|| correct as f64 / fired as f64)
    }

    /// Fraction of instances where ≥2 LFs fire (overlap, Snorkel's metric).
    pub fn overlap(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        (0..self.n)
            .filter(|&i| self.row(i).iter().filter(|&&v| v != ABSTAIN).count() >= 2)
            .count() as f64
            / self.n as f64
    }

    /// Fraction of instances where two firing LFs disagree.
    pub fn conflict(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        (0..self.n)
            .filter(|&i| {
                let mut first: Option<i8> = None;
                self.row(i).iter().any(|&v| {
                    if v == ABSTAIN {
                        return false;
                    }
                    match first {
                        None => {
                            first = Some(v);
                            false
                        }
                        Some(f) => v != f,
                    }
                })
            })
            .count() as f64
            / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lf::StumpOp;
    use adp_data::{FeatureSet, Task};
    use adp_linalg::Matrix;

    #[test]
    fn from_raw_roundtrips_and_rejects_bad_shapes() {
        let m = LabelMatrix::from_votes(&[vec![1, ABSTAIN], vec![0, 1]]).unwrap();
        let back = LabelMatrix::from_raw(2, 2, m.votes().to_vec()).unwrap();
        assert_eq!(m, back);
        assert!(LabelMatrix::from_raw(2, 2, vec![1; 3]).is_err());
        // Hostile decoded dimensions must be the same typed error, not a
        // multiply overflow — and never a wrapped product that passes.
        assert!(LabelMatrix::from_raw(usize::MAX, 2, vec![]).is_err());
        assert!(LabelMatrix::from_raw(1 << 40, 1 << 40, vec![]).is_err());
    }

    fn dataset() -> Dataset {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        Dataset {
            name: "tab".into(),
            task: Task::OccupancyPrediction,
            n_classes: 2,
            features: FeatureSet::Dense(x),
            labels: vec![0, 0, 1, 1],
            texts: None,
            encoded_docs: None,
        }
    }

    fn lfs() -> Vec<LabelFunction> {
        vec![
            LabelFunction::Stump {
                feature: 0,
                threshold: 2.0,
                op: StumpOp::Ge,
                label: 1,
            },
            LabelFunction::Stump {
                feature: 0,
                threshold: 1.0,
                op: StumpOp::Le,
                label: 0,
            },
            // Deliberately wrong LF: fires on everything voting 1.
            LabelFunction::Stump {
                feature: 0,
                threshold: -10.0,
                op: StumpOp::Ge,
                label: 1,
            },
        ]
    }

    #[test]
    fn from_lfs_layout() {
        let m = LabelMatrix::from_lfs(&lfs(), &dataset());
        assert_eq!(m.n_instances(), 4);
        assert_eq!(m.n_lfs(), 3);
        assert_eq!(m.row(0), &[ABSTAIN, 0, 1]);
        assert_eq!(m.row(3), &[1, ABSTAIN, 1]);
    }

    #[test]
    fn coverage_overlap_conflict() {
        let m = LabelMatrix::from_lfs(&lfs(), &dataset());
        assert_eq!(m.coverage(), 1.0); // LF3 fires everywhere
        assert_eq!(m.overlap(), 1.0); // every row has >= 2 votes
                                      // rows 0,1: votes {0,1} conflict; rows 2,3: votes {1,1} agree.
        assert!((m.conflict() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lf_stats() {
        let m = LabelMatrix::from_lfs(&lfs(), &dataset());
        let labels = dataset().labels;
        assert!((m.lf_coverage(0) - 0.5).abs() < 1e-12);
        assert_eq!(m.lf_accuracy(0, &labels), Some(1.0));
        assert_eq!(m.lf_accuracy(2, &labels), Some(0.5));
    }

    #[test]
    fn push_lf_appends_column() {
        let d = dataset();
        let mut m = LabelMatrix::empty(4);
        assert_eq!(m.n_lfs(), 0);
        assert!(!m.has_vote(0));
        m.push_lf(&lfs()[0], &d).unwrap();
        m.push_lf(&lfs()[1], &d).unwrap();
        assert_eq!(m.n_lfs(), 2);
        assert_eq!(m.row(3), &[1, ABSTAIN]);
        let full = LabelMatrix::from_lfs(&lfs()[..2], &d);
        assert_eq!(m, full);
    }

    #[test]
    fn select_columns_and_rows() {
        let m = LabelMatrix::from_lfs(&lfs(), &dataset());
        let sub = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(sub.n_lfs(), 2);
        assert_eq!(sub.row(3), &[1, 1]);
        assert!(m.select_columns(&[5]).is_err());
        let rows = m.select_rows(&[3, 0]).unwrap();
        assert_eq!(rows.n_instances(), 2);
        assert_eq!(rows.row(0), m.row(3));
        assert!(m.select_rows(&[9]).is_err());
    }

    #[test]
    fn set_overwrites_votes() {
        let mut m = LabelMatrix::from_lfs(&lfs(), &dataset());
        m.set(0, 2, 0).unwrap();
        assert_eq!(m.get(0, 2), 0);
        assert!(m.set(9, 0, 0).is_err());
        assert!(m.set(0, 9, 0).is_err());
    }

    #[test]
    fn empty_matrix_stats_are_zero() {
        let m = LabelMatrix::empty(0);
        assert_eq!(m.coverage(), 0.0);
        assert_eq!(m.overlap(), 0.0);
        assert_eq!(m.conflict(), 0.0);
    }

    #[test]
    fn from_votes_roundtrip_and_validation() {
        let m = LabelMatrix::from_votes(&[vec![1, ABSTAIN], vec![0, 1]]).unwrap();
        assert_eq!(m.n_instances(), 2);
        assert_eq!(m.n_lfs(), 2);
        assert_eq!(m.row(0), &[1, ABSTAIN]);
        assert!(LabelMatrix::from_votes(&[vec![1], vec![0, 1]]).is_err());
        let empty = LabelMatrix::from_votes(&[]).unwrap();
        assert_eq!(empty.n_instances(), 0);
    }

    #[test]
    fn from_lfs_serial_matches_parallel() {
        // Several apply-chunks, awkward length.
        let n = 3 * APPLY_CHUNK + 91;
        let x = Matrix::from_fn(n, 1, |i, _| (i % 17) as f64);
        let big = Dataset {
            name: "big".into(),
            task: Task::OccupancyPrediction,
            n_classes: 2,
            features: FeatureSet::Dense(x),
            labels: (0..n).map(|i| usize::from(i % 17 >= 8)).collect(),
            texts: None,
            encoded_docs: None,
        };
        let serial = LabelMatrix::from_lfs_exec(&lfs(), &big, adp_linalg::Execution::Serial);
        let parallel = LabelMatrix::from_lfs_exec(&lfs(), &big, adp_linalg::Execution::parallel());
        assert_eq!(serial, parallel);
        // push_lf (auto-parallel at this size) agrees with from_lfs.
        let mut pushed = LabelMatrix::empty(n);
        for lf in lfs() {
            pushed.push_lf(&lf, &big).unwrap();
        }
        assert_eq!(pushed, LabelMatrix::from_lfs(&lfs(), &big));
    }

    #[test]
    fn accuracy_none_for_never_firing() {
        let d = dataset();
        let never = LabelFunction::Stump {
            feature: 0,
            threshold: 100.0,
            op: StumpOp::Ge,
            label: 1,
        };
        let m = LabelMatrix::from_lfs(&[never], &d);
        assert_eq!(m.lf_accuracy(0, &d.labels), None);
        assert_eq!(m.lf_coverage(0), 0.0);
    }
}
