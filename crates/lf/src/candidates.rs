//! Candidate label-function spaces (paper §4.1.4).
//!
//! * Text: every keyword LF `λ_{w,y}` with `w` in the query document and
//!   train-set accuracy above the threshold.
//! * Tabular: every decision stump `λ_{j,v,op,y}` with `v = x_j` (the query
//!   instance sits on the boundary) and train-set accuracy above the
//!   threshold.
//!
//! The text space is precomputed once per dataset (per-token class counts);
//! stump statistics are computed per query with one pass over the training
//! column.

use crate::lf::{LabelFunction, StumpOp};
use adp_data::Dataset;

/// A candidate LF together with its training-set statistics.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The label function.
    pub lf: LabelFunction,
    /// Accuracy on the covered training instances.
    pub accuracy: f64,
    /// Fraction of training instances covered.
    pub coverage: f64,
}

#[derive(Debug, Clone)]
struct TokenStat {
    /// Number of training documents containing the token.
    covered: usize,
    /// Per-class document counts among those.
    per_class: Vec<usize>,
}

#[derive(Debug, Clone)]
enum SpaceKind {
    Text { token_stats: Vec<TokenStat> },
    Tabular { min_support: usize },
}

/// The candidate-LF space of one training dataset.
#[derive(Debug, Clone)]
pub struct CandidateSpace {
    kind: SpaceKind,
    n_train: usize,
    n_classes: usize,
}

impl CandidateSpace {
    /// Builds the space for `train`. For tabular datasets, stumps must cover
    /// at least `max(5, n/500)` training instances for their accuracy
    /// estimate to be meaningful.
    pub fn build(train: &Dataset) -> Self {
        let n = train.len();
        if let Some(docs) = &train.encoded_docs {
            let vocab_size = train.features.ncols();
            let mut token_stats = vec![
                TokenStat {
                    covered: 0,
                    per_class: vec![0; train.n_classes],
                };
                vocab_size
            ];
            let mut seen: Vec<bool> = vec![false; vocab_size];
            for (doc, &y) in docs.iter().zip(&train.labels) {
                for &t in doc {
                    let t = t as usize;
                    if !seen[t] {
                        seen[t] = true;
                        token_stats[t].covered += 1;
                        token_stats[t].per_class[y] += 1;
                    }
                }
                for &t in doc {
                    seen[t as usize] = false;
                }
            }
            CandidateSpace {
                kind: SpaceKind::Text { token_stats },
                n_train: n,
                n_classes: train.n_classes,
            }
        } else {
            CandidateSpace {
                kind: SpaceKind::Tabular {
                    min_support: (n / 500).max(5),
                },
                n_train: n,
                n_classes: train.n_classes,
            }
        }
    }

    /// Number of classes of the underlying task.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Candidate LFs for query instance `idx` that vote `target_label`
    /// and have training accuracy strictly above `acc_threshold`.
    ///
    /// `query_dataset` is usually the training set itself, but any dataset
    /// with the same modality/vocabulary works (the statistics always come
    /// from the training set the space was built on).
    pub fn candidates_for(
        &self,
        train: &Dataset,
        query_dataset: &Dataset,
        idx: usize,
        target_label: usize,
        acc_threshold: f64,
    ) -> Vec<Candidate> {
        match &self.kind {
            SpaceKind::Text { token_stats } => {
                let docs = query_dataset
                    .encoded_docs
                    .as_ref()
                    .expect("text candidate space on non-text dataset");
                let mut out = Vec::new();
                let mut seen: Vec<u32> = Vec::new();
                for &t in &docs[idx] {
                    if seen.contains(&t) {
                        continue;
                    }
                    seen.push(t);
                    let stat = &token_stats[t as usize];
                    if stat.covered == 0 {
                        continue;
                    }
                    let acc = stat.per_class[target_label] as f64 / stat.covered as f64;
                    if acc > acc_threshold {
                        out.push(Candidate {
                            lf: LabelFunction::Keyword {
                                token: t,
                                label: target_label,
                            },
                            accuracy: acc,
                            coverage: stat.covered as f64 / self.n_train as f64,
                        });
                    }
                }
                out
            }
            SpaceKind::Tabular { min_support } => {
                let x = query_dataset.features.as_dense();
                let train_x = train.features.as_dense();
                let d = train_x.ncols();
                let mut out = Vec::new();
                for feature in 0..d {
                    let v = x[(idx, feature)];
                    for op in StumpOp::both() {
                        let mut covered = 0usize;
                        let mut correct = 0usize;
                        for i in 0..train.len() {
                            if op.matches(train_x[(i, feature)], v) {
                                covered += 1;
                                if train.labels[i] == target_label {
                                    correct += 1;
                                }
                            }
                        }
                        if covered < *min_support {
                            continue;
                        }
                        let acc = correct as f64 / covered as f64;
                        if acc > acc_threshold {
                            out.push(Candidate {
                                lf: LabelFunction::Stump {
                                    feature,
                                    threshold: v,
                                    op,
                                    label: target_label,
                                },
                                accuracy: acc,
                                coverage: covered as f64 / self.n_train as f64,
                            });
                        }
                    }
                }
                out
            }
        }
    }

    /// The *global* candidate pool used by IWS and the SEU sampler: every
    /// keyword LF with its majority label (text), or stumps on a per-feature
    /// quantile grid (tabular). No accuracy threshold is applied — IWS
    /// learns to predict accuracy itself.
    pub fn global_pool(&self, train: &Dataset, n_quantiles: usize) -> Vec<Candidate> {
        match &self.kind {
            SpaceKind::Text { token_stats } => {
                let mut out = Vec::new();
                for (t, stat) in token_stats.iter().enumerate() {
                    if stat.covered == 0 {
                        continue;
                    }
                    let (label, &count) = stat
                        .per_class
                        .iter()
                        .enumerate()
                        .max_by_key(|&(_, c)| *c)
                        .expect("non-empty class counts");
                    out.push(Candidate {
                        lf: LabelFunction::Keyword {
                            token: t as u32,
                            label,
                        },
                        accuracy: count as f64 / stat.covered as f64,
                        coverage: stat.covered as f64 / self.n_train as f64,
                    });
                }
                out
            }
            SpaceKind::Tabular { min_support } => {
                let train_x = train.features.as_dense();
                let d = train_x.ncols();
                let n = train.len();
                let mut out = Vec::new();
                for feature in 0..d {
                    let mut col = train_x.col(feature);
                    col.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite features"));
                    for q in 1..=n_quantiles {
                        let pos = (q * (n - 1)) / (n_quantiles + 1);
                        let v = col[pos];
                        for op in StumpOp::both() {
                            let mut covered = 0usize;
                            let mut per_class = vec![0usize; self.n_classes];
                            for i in 0..n {
                                if op.matches(train_x[(i, feature)], v) {
                                    covered += 1;
                                    per_class[train.labels[i]] += 1;
                                }
                            }
                            if covered < *min_support {
                                continue;
                            }
                            let (label, &count) = per_class
                                .iter()
                                .enumerate()
                                .max_by_key(|&(_, c)| *c)
                                .expect("non-empty class counts");
                            out.push(Candidate {
                                lf: LabelFunction::Stump {
                                    feature,
                                    threshold: v,
                                    op,
                                    label,
                                },
                                accuracy: count as f64 / covered as f64,
                                coverage: covered as f64 / n as f64,
                            });
                        }
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{Dataset, FeatureSet, Task};
    use adp_linalg::{CsrMatrix, Matrix};

    fn text_train() -> Dataset {
        // token 0: appears in 3 docs, 2 of class 1 => acc(·,1)=2/3
        // token 1: appears in 2 docs, both class 1 => acc(·,1)=1
        // token 2: appears in 2 docs, both class 0 => acc(·,0)=1
        Dataset {
            name: "t".into(),
            task: Task::SpamClassification,
            n_classes: 2,
            features: FeatureSet::Sparse(CsrMatrix::empty(4, 3)),
            labels: vec![1, 1, 0, 0],
            texts: None,
            encoded_docs: Some(vec![vec![0, 1], vec![0, 1], vec![0, 2], vec![2]]),
        }
    }

    fn tabular_train(n: usize) -> Dataset {
        // Feature perfectly separates classes at 0.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![if i < n / 2 {
                    -1.0 - (i as f64 / n as f64)
                } else {
                    1.0 + (i as f64 / n as f64)
                }]
            })
            .collect();
        let labels: Vec<usize> = (0..n).map(|i| usize::from(i >= n / 2)).collect();
        Dataset {
            name: "tab".into(),
            task: Task::OccupancyPrediction,
            n_classes: 2,
            features: FeatureSet::Dense(Matrix::from_rows(&rows).unwrap()),
            labels,
            texts: None,
            encoded_docs: None,
        }
    }

    #[test]
    fn text_candidates_respect_threshold() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        // Query doc 0 = {0,1}, target label 1.
        let c = space.candidates_for(&d, &d, 0, 1, 0.6);
        // token 0 has acc 2/3 > 0.6, token 1 has acc 1.0.
        assert_eq!(c.len(), 2);
        let c = space.candidates_for(&d, &d, 0, 1, 0.9);
        assert_eq!(c.len(), 1);
        assert!(matches!(
            c[0].lf,
            LabelFunction::Keyword { token: 1, label: 1 }
        ));
        assert!((c[0].coverage - 0.5).abs() < 1e-12);
    }

    #[test]
    fn text_candidates_for_wrong_label_are_leaked_words() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        // Query doc 2 = {0,2} true label 0. Target label 1: token 0 has
        // acc(·,1)=2/3 > 0.6 => a "noisy" candidate exists.
        let c = space.candidates_for(&d, &d, 2, 1, 0.6);
        assert_eq!(c.len(), 1);
        assert!(matches!(c[0].lf, LabelFunction::Keyword { token: 0, .. }));
    }

    #[test]
    fn duplicate_tokens_in_doc_yield_one_candidate() {
        let mut d = text_train();
        d.encoded_docs.as_mut().unwrap()[0] = vec![1, 1, 1];
        let space = CandidateSpace::build(&d);
        let c = space.candidates_for(&d, &d, 0, 1, 0.6);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn tabular_candidates_lie_on_query_boundary() {
        let d = tabular_train(40);
        let space = CandidateSpace::build(&d);
        let idx = 30; // class-1 instance, positive value
        let c = space.candidates_for(&d, &d, idx, 1, 0.6);
        assert!(!c.is_empty());
        let v = d.features.as_dense()[(idx, 0)];
        for cand in &c {
            match cand.lf {
                LabelFunction::Stump {
                    threshold, label, ..
                } => {
                    assert_eq!(label, 1);
                    assert_eq!(threshold, v);
                }
                _ => panic!("expected stump"),
            }
            assert!(cand.accuracy > 0.6);
        }
        // x >= v covers only class-1 instances => perfect accuracy present.
        assert!(c.iter().any(|cand| cand.accuracy == 1.0));
    }

    #[test]
    fn tabular_min_support_filters_tiny_stumps() {
        let d = tabular_train(40); // min_support = max(5, 40/500) = 5
        let space = CandidateSpace::build(&d);
        // The largest value: `x >= v` covers exactly 1 row -> filtered.
        let idx = 39;
        let c = space.candidates_for(&d, &d, idx, 1, 0.6);
        for cand in &c {
            assert!(cand.coverage * 40.0 >= 5.0 - 1e-9);
        }
    }

    #[test]
    fn global_pool_text_majority_labels() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let pool = space.global_pool(&d, 0);
        assert_eq!(pool.len(), 3);
        let tok2 = pool
            .iter()
            .find(|c| matches!(c.lf, LabelFunction::Keyword { token: 2, .. }))
            .unwrap();
        assert_eq!(tok2.lf.label(), 0);
        assert_eq!(tok2.accuracy, 1.0);
    }

    #[test]
    fn global_pool_tabular_quantile_grid() {
        let d = tabular_train(100);
        let space = CandidateSpace::build(&d);
        let pool = space.global_pool(&d, 7);
        assert!(!pool.is_empty());
        // Thresholds must be actual data values spanning the range.
        for c in &pool {
            if let LabelFunction::Stump { threshold, .. } = c.lf {
                assert!(threshold.abs() <= 2.5);
            }
        }
        // Some stump in the pool must be highly accurate (the split at 0).
        assert!(pool.iter().any(|c| c.accuracy > 0.9));
    }
}
