//! The simulated user of paper §4.1.4.
//!
//! Given a query instance the user builds the candidate-LF set (accuracy
//! above `acc_threshold`, keyword inside / boundary at the instance),
//! removes LFs returned in earlier iterations, and samples one with
//! probability proportional to LF coverage. Under label noise (Table 5) a
//! fraction of queries instead draws from the candidate set of the *flipped*
//! label, producing LFs that remain above the accuracy threshold globally
//! but misfire on their own query instance.

use crate::candidates::{Candidate, CandidateSpace};
use crate::lf::{LabelFunction, LfKey};
use adp_data::Dataset;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Simulated-user parameters.
#[derive(Debug, Clone, Copy)]
pub struct UserConfig {
    /// Candidate accuracy threshold τ_acc (paper: 0.6).
    pub acc_threshold: f64,
    /// Fraction of queries answered with a flipped-label LF (Table 5's
    /// label-noise rate; 0 reproduces the main experiments).
    pub noise_rate: f64,
}

impl Default for UserConfig {
    fn default() -> Self {
        UserConfig {
            acc_threshold: 0.6,
            noise_rate: 0.0,
        }
    }
}

/// Everything mutable about a [`SimulatedUser`], as plain data: the RNG
/// stream position and the set of LFs already returned. Captured by
/// [`SimulatedUser::state`] and replayed by [`SimulatedUser::from_state`],
/// so a session snapshot can resume the oracle mid-stream. The returned
/// keys are sorted so the same user state always produces the same bytes
/// when encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserState {
    /// Internal RNG words (see `rand::rngs::StdRng::state`).
    pub rng: [u64; 4],
    /// Keys of every LF returned so far, in canonical (sorted) order.
    pub returned: Vec<LfKey>,
}

/// Stateful simulated user: remembers previously returned LFs and its own
/// RNG stream so runs are reproducible given a seed.
#[derive(Debug)]
pub struct SimulatedUser {
    config: UserConfig,
    returned: HashSet<LfKey>,
    rng: rand::rngs::StdRng,
}

impl SimulatedUser {
    /// A user with `config`, seeded deterministically.
    pub fn new(config: UserConfig, seed: u64) -> Self {
        SimulatedUser {
            config,
            returned: HashSet::new(),
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Convenience constructor with the paper's defaults.
    pub fn with_defaults(seed: u64) -> Self {
        SimulatedUser::new(UserConfig::default(), seed)
    }

    /// Captures the user's mutable state (RNG stream + returned-LF set) as
    /// plain data for a session snapshot.
    pub fn state(&self) -> UserState {
        let mut returned: Vec<LfKey> = self.returned.iter().copied().collect();
        returned.sort_unstable();
        UserState {
            rng: self.rng.state(),
            returned,
        }
    }

    /// Rebuilds a user mid-trajectory from `config` and a previously
    /// captured [`UserState`]: the resumed user answers exactly the queries
    /// the original would have answered next.
    pub fn from_state(config: UserConfig, state: &UserState) -> Self {
        SimulatedUser {
            config,
            returned: state.returned.iter().copied().collect(),
            rng: rand::rngs::StdRng::from_state(state.rng),
        }
    }

    /// The RNG stream position alone — what a per-step WAL event records.
    /// Cheaper than [`SimulatedUser::state`], which also collects and sorts
    /// the returned-LF set (the WAL reconstructs that set from the logged
    /// LFs instead).
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// The accuracy threshold in use.
    pub fn acc_threshold(&self) -> f64 {
        self.config.acc_threshold
    }

    /// The full configuration in use.
    pub fn config(&self) -> UserConfig {
        self.config
    }

    /// Number of distinct LFs returned so far.
    pub fn n_returned(&self) -> usize {
        self.returned.len()
    }

    /// Marks `key` as already returned without consuming any RNG. A router
    /// placing this user alongside a second labeller calls this when the
    /// *other* oracle answers, so neither source ever re-proposes an LF the
    /// session already holds.
    pub fn note_returned(&mut self, key: LfKey) {
        self.returned.insert(key);
    }

    /// Responds to a query on instance `idx` of `query_dataset` (ground
    /// truth comes from `query_dataset.labels`, as in the paper's
    /// simulation). Returns `None` when every candidate was already
    /// returned or none exists — the iteration's budget is still spent.
    pub fn respond(
        &mut self,
        space: &CandidateSpace,
        train: &Dataset,
        query_dataset: &Dataset,
        idx: usize,
    ) -> Option<LabelFunction> {
        let true_label = query_dataset.labels[idx];
        let flip = self.config.noise_rate > 0.0 && self.rng.gen::<f64>() < self.config.noise_rate;
        let target = if flip {
            debug_assert!(query_dataset.n_classes == 2, "noise flip assumes binary");
            1 - true_label
        } else {
            true_label
        };
        let candidates =
            space.candidates_for(train, query_dataset, idx, target, self.config.acc_threshold);
        let fresh: Vec<&Candidate> = candidates
            .iter()
            .filter(|c| !self.returned.contains(&c.lf.key()))
            .collect();
        if fresh.is_empty() {
            return None;
        }
        let total: f64 = fresh.iter().map(|c| c.coverage).sum();
        let mut draw = self.rng.gen::<f64>() * total;
        let mut chosen = fresh[fresh.len() - 1];
        for c in &fresh {
            draw -= c.coverage;
            if draw <= 0.0 {
                chosen = c;
                break;
            }
        }
        self.returned.insert(chosen.lf.key());
        Some(chosen.lf.clone())
    }

    /// IWS-style verification: the simulated expert marks a candidate LF as
    /// accurate when its true training accuracy exceeds the threshold.
    pub fn verify(&self, candidate: &Candidate) -> bool {
        candidate.accuracy > self.config.acc_threshold
    }

    /// Instance-labelling supervision (uncertainty sampling / Revising LF):
    /// the simulated user returns the true label.
    pub fn label_instance(&self, dataset: &Dataset, idx: usize) -> usize {
        dataset.labels[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{FeatureSet, Task};
    use adp_linalg::CsrMatrix;

    fn text_train() -> Dataset {
        // tokens: 0 in docs {0,1,2} (classes 1,1,0), 1 in {0,1} (1,1),
        //         2 in {2,3} (0,0).
        Dataset {
            name: "t".into(),
            task: Task::SpamClassification,
            n_classes: 2,
            features: FeatureSet::Sparse(CsrMatrix::empty(4, 3)),
            labels: vec![1, 1, 0, 0],
            texts: None,
            encoded_docs: Some(vec![vec![0, 1], vec![0, 1], vec![0, 2], vec![2]]),
        }
    }

    #[test]
    fn returns_candidate_matching_true_label() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let mut user = SimulatedUser::with_defaults(1);
        let lf = user.respond(&space, &d, &d, 0).expect("candidates exist");
        assert_eq!(lf.label(), 1);
        // LF fires on the query instance.
        assert_ne!(lf.apply(&d, 0), crate::lf::ABSTAIN);
    }

    #[test]
    fn never_repeats_an_lf() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let mut user = SimulatedUser::with_defaults(2);
        let mut seen = HashSet::new();
        // Query doc 0 repeatedly: it has 2 candidates (tokens 0 and 1).
        let mut produced = 0;
        for _ in 0..5 {
            if let Some(lf) = user.respond(&space, &d, &d, 0) {
                assert!(seen.insert(lf.key()), "duplicate LF returned");
                produced += 1;
            }
        }
        assert_eq!(produced, 2);
        assert_eq!(user.n_returned(), 2);
    }

    #[test]
    fn returns_none_without_candidates() {
        let mut d = text_train();
        // Doc 3 = {2}; token 2 votes class 0 with acc 1.0, but the true
        // label of doc 3 is 0 — candidates exist. Rewrite doc 3 to contain
        // nothing so no candidate exists.
        d.encoded_docs.as_mut().unwrap()[3] = vec![];
        let space = CandidateSpace::build(&d);
        let mut user = SimulatedUser::with_defaults(3);
        assert!(user.respond(&space, &d, &d, 3).is_none());
    }

    #[test]
    fn noise_produces_misfiring_lfs() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let mut user = SimulatedUser::new(
            UserConfig {
                acc_threshold: 0.6,
                noise_rate: 1.0,
            },
            4,
        );
        // Query doc 2 (true label 0) with guaranteed flip: target label 1.
        // Token 0 has acc(·,1) = 2/3 > 0.6, so a flipped LF exists and its
        // vote (1) disagrees with the query's true label (0).
        let lf = user.respond(&space, &d, &d, 2).expect("noisy candidate");
        assert_eq!(lf.label(), 1);
        assert_ne!(lf.apply(&d, 2) as usize, d.labels[2]);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let run = |seed| {
            let mut u = SimulatedUser::with_defaults(seed);
            (0..4)
                .map(|i| u.respond(&space, &d, &d, i).map(|lf| lf.key()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn verify_thresholds_accuracy() {
        let user = SimulatedUser::with_defaults(0);
        let c = |acc| Candidate {
            lf: LabelFunction::Keyword { token: 0, label: 1 },
            accuracy: acc,
            coverage: 0.5,
        };
        assert!(user.verify(&c(0.7)));
        assert!(!user.verify(&c(0.6)));
        assert!(!user.verify(&c(0.2)));
    }

    #[test]
    fn label_instance_returns_truth() {
        let d = text_train();
        let user = SimulatedUser::with_defaults(0);
        assert_eq!(user.label_instance(&d, 0), 1);
        assert_eq!(user.label_instance(&d, 3), 0);
    }

    #[test]
    fn state_roundtrip_resumes_the_oracle_mid_trajectory() {
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let mut user = SimulatedUser::with_defaults(11);
        // Burn some of the trajectory (consumes RNG and fills `returned`).
        for i in 0..3 {
            let _ = user.respond(&space, &d, &d, i);
        }
        let saved = user.state();
        let tail: Vec<Option<LfKey>> = (0..4)
            .map(|i| user.respond(&space, &d, &d, i).map(|lf| lf.key()))
            .collect();
        let mut resumed = SimulatedUser::from_state(UserConfig::default(), &saved);
        let resumed_tail: Vec<Option<LfKey>> = (0..4)
            .map(|i| resumed.respond(&space, &d, &d, i).map(|lf| lf.key()))
            .collect();
        assert_eq!(tail, resumed_tail);
        // The captured state is canonical: keys sorted, stable across calls.
        assert_eq!(
            saved,
            SimulatedUser::from_state(UserConfig::default(), &saved).state()
        );
        let mut keys = saved.returned.clone();
        keys.sort_unstable();
        assert_eq!(keys, saved.returned);
    }

    #[test]
    fn coverage_weighting_prefers_frequent_tokens() {
        // token 0 coverage 0.75, token 1 coverage 0.5 — over many fresh
        // users, token 0 must be drawn more often for query doc 0.
        let d = text_train();
        let space = CandidateSpace::build(&d);
        let mut count0 = 0;
        for seed in 0..200 {
            let mut u = SimulatedUser::with_defaults(seed);
            if let Some(LabelFunction::Keyword { token: 0, .. }) = u.respond(&space, &d, &d, 0) {
                count0 += 1;
            }
        }
        // Expected ≈ 200 * 0.75/1.25 = 120.
        assert!(count0 > 95, "token-0 draws: {count0}");
        assert!(count0 < 145, "token-0 draws: {count0}");
    }
}
