//! The two label-function families used in the paper's evaluation.

use adp_data::Dataset;
use adp_text::Vocabulary;

/// The abstain vote: the LF makes no prediction on the instance.
pub const ABSTAIN: i8 = -1;

/// Comparison direction of a decision stump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StumpOp {
    /// Fires when `x_j <= threshold`.
    Le,
    /// Fires when `x_j >= threshold`.
    Ge,
}

impl StumpOp {
    /// Both directions.
    pub fn both() -> [StumpOp; 2] {
        [StumpOp::Le, StumpOp::Ge]
    }

    /// Evaluates the comparison.
    #[inline]
    pub fn matches(self, value: f64, threshold: f64) -> bool {
        match self {
            StumpOp::Le => value <= threshold,
            StumpOp::Ge => value >= threshold,
        }
    }
}

/// A label function: votes `label` on the instances it covers, abstains
/// elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub enum LabelFunction {
    /// Text LF `keyword → label` (fires when the document contains the
    /// vocabulary token).
    Keyword {
        /// Vocabulary id of the trigger token.
        token: u32,
        /// Voted class.
        label: usize,
    },
    /// Tabular LF `x_j (≤|≥) v → label` (paper §4.1.4 decision stumps with
    /// the query instance's own value as the boundary).
    Stump {
        /// Feature index.
        feature: usize,
        /// Decision boundary.
        threshold: f64,
        /// Comparison direction.
        op: StumpOp,
        /// Voted class.
        label: usize,
    },
}

/// Hashable identity of an LF, used to filter previously returned LFs
/// (§4.1.4) without relying on float `Eq`. `Ord` so key *sets* have a
/// canonical order — snapshot encoding sorts them to keep encoded bytes
/// deterministic across `HashSet` iteration orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LfKey {
    /// Keyword LF identity.
    Keyword(u32, usize),
    /// Stump LF identity with the threshold's bit pattern.
    Stump(usize, u64, StumpOp, usize),
}

impl LabelFunction {
    /// The class this LF votes for.
    pub fn label(&self) -> usize {
        match self {
            LabelFunction::Keyword { label, .. } => *label,
            LabelFunction::Stump { label, .. } => *label,
        }
    }

    /// Stable identity for dedup purposes.
    pub fn key(&self) -> LfKey {
        match self {
            LabelFunction::Keyword { token, label } => LfKey::Keyword(*token, *label),
            LabelFunction::Stump {
                feature,
                threshold,
                op,
                label,
            } => LfKey::Stump(*feature, threshold.to_bits(), *op, *label),
        }
    }

    /// Evaluates the LF on instance `i` of `dataset`: the voted label, or
    /// [`ABSTAIN`].
    ///
    /// # Panics
    /// Panics when the LF family does not match the dataset modality (keyword
    /// LFs need encoded documents, stumps need dense features); pipelines
    /// construct LFs from the dataset's own candidate space, so a mismatch is
    /// a programming error.
    #[inline]
    pub fn apply(&self, dataset: &Dataset, i: usize) -> i8 {
        match self {
            LabelFunction::Keyword { token, label } => {
                let docs = dataset
                    .encoded_docs
                    .as_ref()
                    .expect("keyword LF on non-text dataset");
                if docs[i].contains(token) {
                    *label as i8
                } else {
                    ABSTAIN
                }
            }
            LabelFunction::Stump {
                feature,
                threshold,
                op,
                label,
            } => {
                let x = dataset.features.as_dense()[(i, *feature)];
                if op.matches(x, *threshold) {
                    *label as i8
                } else {
                    ABSTAIN
                }
            }
        }
    }

    /// Fraction of `dataset` instances the LF fires on.
    pub fn coverage(&self, dataset: &Dataset) -> f64 {
        if dataset.is_empty() {
            return 0.0;
        }
        let fired = (0..dataset.len())
            .filter(|&i| self.apply(dataset, i) != ABSTAIN)
            .count();
        fired as f64 / dataset.len() as f64
    }

    /// Accuracy on the covered subset of `dataset` (ground-truth labels),
    /// or `None` when the LF never fires.
    pub fn accuracy(&self, dataset: &Dataset) -> Option<f64> {
        let mut fired = 0usize;
        let mut correct = 0usize;
        for i in 0..dataset.len() {
            let v = self.apply(dataset, i);
            if v != ABSTAIN {
                fired += 1;
                if v as usize == dataset.labels[i] {
                    correct += 1;
                }
            }
        }
        if fired == 0 {
            None
        } else {
            Some(correct as f64 / fired as f64)
        }
    }

    /// Human-readable description, e.g. `"check" -> 1` or `x3 >= 0.25 -> 0`.
    pub fn describe(&self, vocab: Option<&Vocabulary>) -> String {
        match self {
            LabelFunction::Keyword { token, label } => match vocab {
                Some(v) => format!("\"{}\" -> {}", v.token(*token), label),
                None => format!("token#{token} -> {label}"),
            },
            LabelFunction::Stump {
                feature,
                threshold,
                op,
                label,
            } => {
                let sym = match op {
                    StumpOp::Le => "<=",
                    StumpOp::Ge => ">=",
                };
                format!("x{feature} {sym} {threshold:.3} -> {label}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_data::{Dataset, FeatureSet, Task};
    use adp_linalg::Matrix;

    pub(crate) fn text_dataset() -> Dataset {
        // 4 docs over a 3-token vocabulary:
        //   doc0: {0,1}  y=1
        //   doc1: {0}    y=1
        //   doc2: {2}    y=0
        //   doc3: {0,2}  y=0
        Dataset {
            name: "t".into(),
            task: Task::SpamClassification,
            n_classes: 2,
            features: FeatureSet::Sparse(adp_linalg::CsrMatrix::empty(4, 3)),
            labels: vec![1, 1, 0, 0],
            texts: None,
            encoded_docs: Some(vec![vec![0, 1], vec![0], vec![2], vec![0, 2]]),
        }
    }

    pub(crate) fn tabular_dataset() -> Dataset {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        Dataset {
            name: "tab".into(),
            task: Task::OccupancyPrediction,
            n_classes: 2,
            features: FeatureSet::Dense(x),
            labels: vec![0, 0, 1, 1],
            texts: None,
            encoded_docs: None,
        }
    }

    #[test]
    fn keyword_apply_and_coverage() {
        let d = text_dataset();
        let lf = LabelFunction::Keyword { token: 0, label: 1 };
        assert_eq!(lf.apply(&d, 0), 1);
        assert_eq!(lf.apply(&d, 2), ABSTAIN);
        assert!((lf.coverage(&d) - 0.75).abs() < 1e-12);
        // Fires on docs 0,1,3; correct on 0,1 => accuracy 2/3.
        assert!((lf.accuracy(&d).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stump_apply_both_ops() {
        let d = tabular_dataset();
        let ge = LabelFunction::Stump {
            feature: 0,
            threshold: 2.0,
            op: StumpOp::Ge,
            label: 1,
        };
        assert_eq!(ge.apply(&d, 3), 1);
        assert_eq!(ge.apply(&d, 1), ABSTAIN);
        assert_eq!(ge.accuracy(&d), Some(1.0));
        let le = LabelFunction::Stump {
            feature: 0,
            threshold: 1.0,
            op: StumpOp::Le,
            label: 0,
        };
        assert_eq!(le.apply(&d, 0), 0);
        assert!((le.coverage(&d) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy_none_when_never_fires() {
        let d = text_dataset();
        let lf = LabelFunction::Keyword {
            token: 99,
            label: 0,
        };
        assert_eq!(lf.accuracy(&d), None);
        assert_eq!(lf.coverage(&d), 0.0);
    }

    #[test]
    fn keys_distinguish_lfs() {
        let a = LabelFunction::Keyword { token: 1, label: 0 };
        let b = LabelFunction::Keyword { token: 1, label: 1 };
        assert_ne!(a.key(), b.key());
        let s1 = LabelFunction::Stump {
            feature: 0,
            threshold: 1.0,
            op: StumpOp::Le,
            label: 0,
        };
        let s2 = LabelFunction::Stump {
            feature: 0,
            threshold: 1.0,
            op: StumpOp::Ge,
            label: 0,
        };
        assert_ne!(s1.key(), s2.key());
        assert_eq!(s1.key(), s1.clone().key());
    }

    #[test]
    fn describe_with_vocab() {
        let lf = LabelFunction::Stump {
            feature: 2,
            threshold: 0.5,
            op: StumpOp::Ge,
            label: 1,
        };
        assert_eq!(lf.describe(None), "x2 >= 0.500 -> 1");
        let kw = LabelFunction::Keyword { token: 0, label: 1 };
        assert_eq!(kw.describe(None), "token#0 -> 1");
    }

    #[test]
    #[should_panic(expected = "keyword LF on non-text")]
    fn keyword_on_tabular_panics() {
        let d = tabular_dataset();
        LabelFunction::Keyword { token: 0, label: 1 }.apply(&d, 0);
    }
}
