//! Label functions and weak supervision plumbing.
//!
//! Data programming (paper §2.1) represents supervision as *label functions*
//! (LFs): rules that vote a class label on a subset of instances and abstain
//! elsewhere. This crate provides:
//!
//! * [`LabelFunction`] — keyword LFs for text and decision-stump LFs for
//!   tabular data, the two families used in the paper's user simulation;
//! * [`LabelMatrix`] — the n×m matrix `W` with `W[i][j] = λ_j(x_i)` and the
//!   usual coverage/overlap/conflict/accuracy statistics;
//! * [`CandidateSpace`] — the per-dataset candidate-LF space of §4.1.4
//!   (all keyword LFs / all boundary decision stumps above an accuracy
//!   threshold);
//! * [`SimulatedUser`] — the paper's user model: given a query instance it
//!   returns an unseen candidate LF consistent with the instance's label,
//!   drawn with probability proportional to LF coverage, with an optional
//!   label-noise mode (Table 5).

pub mod candidates;
pub mod error;
pub mod lf;
pub mod matrix;
pub mod user;

pub use candidates::{Candidate, CandidateSpace};
pub use error::LfError;
pub use lf::{LabelFunction, LfKey, StumpOp, ABSTAIN};
pub use matrix::LabelMatrix;
pub use user::{SimulatedUser, UserConfig, UserState};
