//! Graphical lasso: ℓ1-penalised sparse inverse-covariance estimation.
//!
//! Implements the block coordinate descent of Friedman, Hastie & Tibshirani
//! (2008) — the algorithm the paper cites for LabelPick's dependency-
//! structure learning (§3.4). Each column update solves an ℓ1-penalised
//! quadratic subproblem with `adp_linalg::lasso_quadratic_cd`, warm-started
//! across sweeps.
//!
//! [`markov_blanket`] then reads the non-zero pattern of the estimated
//! precision matrix: variables with non-zero partial correlation to the
//! target form its Markov blanket (Pearl 1988), which LabelPick uses to
//! select the LF subset adjacent to the class label.
//!
//! The column sweep itself is inherently sequential — each column's
//! subproblem reads the `W` entries the previous columns just wrote
//! (warm-start order is part of the algorithm) — but the O(p²) work *inside*
//! one column update is not: gathering the `W₁₁` subproblem, the `s₁₂`
//! right-hand side, the `w₁₂ = W₁₁ β` residual product, and the final
//! per-column precision recovery are all pure per-element computations.
//! Those fan out through [`adp_linalg::parallel::map_chunks`]; because no
//! cross-element reduction is regrouped, serial and parallel runs are
//! **bitwise identical** (pinned by `serial_matches_parallel` here and the
//! workspace `tests/determinism.rs` harness), and the coordinate-descent
//! inner solver stays serial.

pub mod error;

pub use error::GlassoError;

use adp_linalg::lasso::LassoConfig;
use adp_linalg::parallel::{self, Execution};
use adp_linalg::{lasso_quadratic_cd, Matrix};

/// Rows per chunk for the per-column inner ops (the `W₁₁` gather and the
/// `w₁₂` residual product), which run once per column per sweep. Sized so
/// one chunk carries ≥ 64·p elements of work: problems up to p ≈ 65 —
/// LabelPick's cap — fall into a single chunk and take `map_chunks`'
/// zero-overhead serial path, and a scoped spawn only happens where it
/// amortises. Fixed (machine-independent); the fanned-out work is pure
/// per-element, so the chunking never touches any float grouping.
const COL_CHUNK: usize = 64;

/// Columns per chunk for the one-shot precision recovery (each column is
/// O(p) work, and the pass runs once per `graphical_lasso` call).
const DIM_CHUNK: usize = 16;

/// Minimum matrix dimension before threads pay for themselves: the
/// per-column inner ops only split into multiple chunks once
/// `p − 1 > COL_CHUNK`, and each chunk must carry enough O(p · COL_CHUNK)
/// work to outweigh a scoped spawn — below this bound `auto` stays serial
/// (identical bits, zero thread overhead). Public so callers that force a
/// policy (e.g. LabelPick's config switch) can reuse the same threshold in
/// their own [`parallel::auto`] call.
pub const MIN_PARALLEL_DIM: usize = 96;

/// Graphical-lasso hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct GlassoConfig {
    /// ℓ1 penalty ρ on off-diagonal precision entries.
    pub rho: f64,
    /// Convergence tolerance on the mean absolute change of `W` per sweep,
    /// relative to the mean absolute off-diagonal of `S`.
    pub tol: f64,
    /// Maximum number of full column sweeps.
    pub max_sweeps: usize,
}

impl Default for GlassoConfig {
    fn default() -> Self {
        GlassoConfig {
            rho: 0.05,
            tol: 1e-4,
            max_sweeps: 100,
        }
    }
}

/// Output of [`graphical_lasso`].
#[derive(Debug, Clone)]
pub struct GlassoResult {
    /// Estimated (regularised) covariance `W ≈ Θ⁻¹`.
    pub covariance: Matrix,
    /// Estimated sparse precision matrix `Θ`.
    pub precision: Matrix,
    /// Sweeps performed until convergence.
    pub sweeps: usize,
}

/// Runs the graphical lasso on an empirical covariance matrix `s`.
///
/// `s` must be square and symmetric (within 1e-8). Zero-variance variables
/// are handled by the ridge the penalty adds to the diagonal.
///
/// Large problems fan the per-column subproblem setup out over scoped
/// threads ([`parallel::auto`] picks the policy); the result is bitwise
/// identical either way — see the module docs.
pub fn graphical_lasso(s: &Matrix, cfg: GlassoConfig) -> Result<GlassoResult, GlassoError> {
    graphical_lasso_with(s, cfg, parallel::auto(s.nrows(), MIN_PARALLEL_DIM))
}

/// [`graphical_lasso`] under an explicit execution policy. Serial and
/// parallel runs are bitwise identical (see module docs).
pub fn graphical_lasso_with(
    s: &Matrix,
    cfg: GlassoConfig,
    exec: Execution,
) -> Result<GlassoResult, GlassoError> {
    let p = s.nrows();
    if s.ncols() != p {
        return Err(GlassoError::NotSquare { shape: s.shape() });
    }
    if !s.all_finite() {
        return Err(GlassoError::NonFinite);
    }
    if !s.is_symmetric(1e-8) {
        return Err(GlassoError::NotSymmetric);
    }
    if cfg.rho < 0.0 || !cfg.rho.is_finite() {
        return Err(GlassoError::BadPenalty { rho: cfg.rho });
    }
    if p == 0 {
        return Ok(GlassoResult {
            covariance: Matrix::zeros(0, 0),
            precision: Matrix::zeros(0, 0),
            sweeps: 0,
        });
    }
    if p == 1 {
        let w = s[(0, 0)] + cfg.rho;
        let mut cov = Matrix::zeros(1, 1);
        cov[(0, 0)] = w;
        let mut prec = Matrix::zeros(1, 1);
        prec[(0, 0)] = 1.0 / w.max(1e-12);
        return Ok(GlassoResult {
            covariance: cov,
            precision: prec,
            sweeps: 0,
        });
    }

    // W = S + rho I.
    let mut w = s.clone();
    w.add_diagonal(cfg.rho).expect("square by construction");

    // Warm-started betas, one per column.
    let mut betas = vec![vec![0.0f64; p - 1]; p];
    let others: Vec<Vec<usize>> = (0..p)
        .map(|j| (0..p).filter(|&k| k != j).collect())
        .collect();

    // Convergence scale: mean |off-diagonal of S|.
    let mut off_sum = 0.0;
    for i in 0..p {
        for j in 0..p {
            if i != j {
                off_sum += s[(i, j)].abs();
            }
        }
    }
    let scale = (off_sum / (p * (p - 1)) as f64).max(1e-12);

    let lasso_cfg = LassoConfig {
        tol: 1e-6,
        max_sweeps: 1000,
    };
    let mut sweeps = 0;
    for sweep in 1..=cfg.max_sweeps {
        sweeps = sweep;
        let mut delta_sum = 0.0;
        for j in 0..p {
            let idx = &others[j];
            // Subproblem setup: gather the (p−1)×(p−1) quadratic W₁₁ and
            // its right-hand side s₁₂ — pure copies, fanned out row-wise.
            let w11 = gather_submatrix(&w, idx, exec);
            let s12: Vec<f64> = idx.iter().map(|&k| s[(k, j)]).collect();
            // The ℓ1 solve is cyclic coordinate descent — sequential by
            // nature and warm-started from the previous sweep, so it stays
            // on the calling thread; column order is the algorithm.
            lasso_quadratic_cd(&w11, &s12, cfg.rho, &mut betas[j], lasso_cfg)
                .map_err(GlassoError::Inner)?;
            // Residual product w₁₂ = W₁₁ · β: independent per-row dots.
            let w12 = matvec_chunked(&w11, &betas[j], exec);
            for (pos, &k) in idx.iter().enumerate() {
                delta_sum += (w[(k, j)] - w12[pos]).abs();
                w[(k, j)] = w12[pos];
                w[(j, k)] = w12[pos];
            }
        }
        let avg_delta = delta_sum / (p * (p - 1)) as f64;
        if avg_delta < cfg.tol * scale {
            break;
        }
    }

    // Recover the precision matrix from the final (W, beta) pairs: every
    // column is independent of the others, so columns fan out in fixed
    // chunks and write back in column order.
    let mut prec = Matrix::zeros(p, p);
    let (w_ref, betas_ref, others_ref) = (&w, &betas, &others);
    let columns = parallel::map_chunks(p, DIM_CHUNK, exec, |range| {
        range
            .map(|j| {
                let idx = &others_ref[j];
                let w12: Vec<f64> = idx.iter().map(|&k| w_ref[(k, j)]).collect();
                let denom = w_ref[(j, j)] - adp_linalg::dot(&w12, &betas_ref[j]);
                let theta_jj = 1.0 / denom.max(1e-12);
                let off: Vec<f64> = betas_ref[j].iter().map(|&b| -b * theta_jj).collect();
                (theta_jj, off)
            })
            .collect::<Vec<_>>()
    });
    for (j, (theta_jj, off)) in columns.into_iter().flatten().enumerate() {
        prec[(j, j)] = theta_jj;
        for (pos, &k) in others[j].iter().enumerate() {
            prec[(k, j)] = off[pos];
        }
    }
    // Column-wise recovery leaves small asymmetries; symmetrise.
    prec.symmetrize().expect("square by construction");

    Ok(GlassoResult {
        covariance: w,
        precision: prec,
        sweeps,
    })
}

/// `m.submatrix(idx, idx)` with the row gathers fanned out over fixed
/// chunks — pure copies into one flat buffer per chunk, bit-identical to
/// the serial gather.
fn gather_submatrix(m: &Matrix, idx: &[usize], exec: Execution) -> Matrix {
    let p = idx.len();
    let chunks = parallel::map_chunks(p, COL_CHUNK, exec, |range| {
        let mut flat = Vec::with_capacity(range.len() * p);
        for i in range {
            flat.extend(idx.iter().map(|&k| m[(idx[i], k)]));
        }
        flat
    });
    let mut out = Matrix::zeros(p, p);
    let mut offset = 0;
    for chunk in chunks {
        out.as_mut_slice()[offset..offset + chunk.len()].copy_from_slice(&chunk);
        offset += chunk.len();
    }
    out
}

/// `m.matvec(v)` with the per-row dot products fanned out over fixed
/// chunks. Each element is the same serial [`adp_linalg::dot`] the dense
/// kernel computes, so the output is bit-identical to `Matrix::matvec`.
fn matvec_chunked(m: &Matrix, v: &[f64], exec: Execution) -> Vec<f64> {
    parallel::map_chunks(m.nrows(), COL_CHUNK, exec, |range| {
        range
            .map(|i| adp_linalg::dot(m.row(i), v))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Variables with non-zero partial correlation to `target`: the indices `k`
/// with `|Θ[target, k]| > tol`, excluding `target` itself.
pub fn markov_blanket(precision: &Matrix, target: usize, tol: f64) -> Vec<usize> {
    (0..precision.ncols())
        .filter(|&k| k != target && precision[(target, k)].abs() > tol)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_linalg::covariance_matrix;
    use rand::{Rng, SeedableRng};

    fn diag(values: &[f64]) -> Matrix {
        let mut m = Matrix::zeros(values.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    #[test]
    fn diagonal_covariance_gives_diagonal_precision() {
        let s = diag(&[2.0, 4.0, 0.5]);
        let res = graphical_lasso(&s, GlassoConfig::default()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                if i == j {
                    let expect = 1.0 / (s[(i, i)] + 0.05);
                    assert!((res.precision[(i, j)] - expect).abs() < 1e-6);
                } else {
                    assert_eq!(res.precision[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn zero_penalty_matches_matrix_inverse() {
        let s = Matrix::from_rows(&[vec![1.0, 0.5], vec![0.5, 1.0]]).unwrap();
        let cfg = GlassoConfig {
            rho: 0.0,
            tol: 1e-8,
            max_sweeps: 500,
        };
        let res = graphical_lasso(&s, cfg).unwrap();
        // inv([[1,.5],[.5,1]]) = [[4/3, -2/3], [-2/3, 4/3]]
        assert!((res.precision[(0, 0)] - 4.0 / 3.0).abs() < 1e-3);
        assert!((res.precision[(0, 1)] + 2.0 / 3.0).abs() < 1e-3);
    }

    #[test]
    fn large_penalty_removes_all_edges() {
        let s = Matrix::from_rows(&[vec![1.0, 0.8], vec![0.8, 1.0]]).unwrap();
        let cfg = GlassoConfig {
            rho: 1.0,
            ..GlassoConfig::default()
        };
        let res = graphical_lasso(&s, cfg).unwrap();
        assert_eq!(res.precision[(0, 1)], 0.0);
        assert!(markov_blanket(&res.precision, 0, 1e-9).is_empty());
    }

    #[test]
    fn recovers_chain_structure() {
        // AR(1) chain X0 → X1 → X2 → X3: precision is tridiagonal; glasso
        // should find edges only between neighbours.
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 4000;
        let p = 4;
        let mut data = Matrix::zeros(n, p);
        for i in 0..n {
            let mut prev = 0.0;
            for j in 0..p {
                let noise: f64 = {
                    // Box-Muller
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                };
                let x = if j == 0 { noise } else { 0.7 * prev + noise };
                data[(i, j)] = x;
                prev = x;
            }
        }
        let s = covariance_matrix(&data).unwrap();
        let cfg = GlassoConfig {
            rho: 0.3,
            ..GlassoConfig::default()
        };
        let res = graphical_lasso(&s, cfg).unwrap();
        // Neighbour edges clearly present...
        for j in 0..p - 1 {
            assert!(
                res.precision[(j, j + 1)].abs() > 0.1,
                "missing edge {j}-{}",
                j + 1
            );
        }
        // ...distant pairs (conditionally independent in truth) much weaker.
        assert!(
            res.precision[(0, 2)].abs() < 0.05,
            "{}",
            res.precision[(0, 2)]
        );
        assert!(res.precision[(0, 3)].abs() < 0.05);
        assert!(res.precision[(1, 3)].abs() < 0.05);
        // Markov blanket of the middle node = its neighbours.
        let mb = markov_blanket(&res.precision, 1, 0.05);
        assert_eq!(mb, vec![0, 2]);
    }

    #[test]
    fn precision_is_symmetric() {
        let s = Matrix::from_rows(&[
            vec![1.0, 0.3, 0.1],
            vec![0.3, 1.0, 0.2],
            vec![0.1, 0.2, 1.0],
        ])
        .unwrap();
        let res = graphical_lasso(&s, GlassoConfig::default()).unwrap();
        assert!(res.precision.is_symmetric(1e-9));
        assert!(res.covariance.is_symmetric(1e-9));
    }

    #[test]
    fn handles_zero_variance_variable() {
        // Variable 1 is constant: S row/col zero. The ridge keeps it solvable.
        let s = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 0.0]]).unwrap();
        let res = graphical_lasso(&s, GlassoConfig::default()).unwrap();
        assert!(res.precision.all_finite());
        assert_eq!(res.precision[(0, 1)], 0.0);
    }

    #[test]
    fn degenerate_sizes() {
        let empty = graphical_lasso(&Matrix::zeros(0, 0), GlassoConfig::default()).unwrap();
        assert_eq!(empty.precision.shape(), (0, 0));
        let one = graphical_lasso(&diag(&[2.0]), GlassoConfig::default()).unwrap();
        assert!((one.precision[(0, 0)] - 1.0 / 2.05).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            graphical_lasso(&Matrix::zeros(2, 3), GlassoConfig::default()).unwrap_err(),
            GlassoError::NotSquare { .. }
        ));
        let asym = Matrix::from_rows(&[vec![1.0, 0.5], vec![0.1, 1.0]]).unwrap();
        assert!(matches!(
            graphical_lasso(&asym, GlassoConfig::default()).unwrap_err(),
            GlassoError::NotSymmetric
        ));
        let mut nan = Matrix::zeros(2, 2);
        nan[(0, 0)] = f64::NAN;
        assert!(matches!(
            graphical_lasso(&nan, GlassoConfig::default()).unwrap_err(),
            GlassoError::NonFinite
        ));
        let s = Matrix::identity(2);
        let bad = GlassoConfig {
            rho: -1.0,
            ..GlassoConfig::default()
        };
        assert!(matches!(
            graphical_lasso(&s, bad).unwrap_err(),
            GlassoError::BadPenalty { .. }
        ));
    }

    #[test]
    fn serial_matches_parallel_bitwise() {
        // p = 60 exceeds MIN_PARALLEL_DIM; the policy is forced both ways
        // and swept over thread counts anyway.
        let data = Matrix::from_fn(400, 60, |i, j| {
            (((i * 7 + j * 13) % 23) as f64 - 11.0) * 0.1 + (i % 5) as f64 * 0.03 * (j % 7) as f64
        });
        let s = covariance_matrix(&data).unwrap();
        let cfg = GlassoConfig {
            rho: 0.1,
            ..GlassoConfig::default()
        };
        let serial = graphical_lasso_with(&s, cfg, Execution::Serial).unwrap();
        for threads in [2, 3, 7] {
            let par = graphical_lasso_with(&s, cfg, Execution::with_threads(threads)).unwrap();
            assert_eq!(par.sweeps, serial.sweeps, "threads={threads}");
            for i in 0..s.nrows() {
                for j in 0..s.ncols() {
                    assert_eq!(
                        serial.precision[(i, j)].to_bits(),
                        par.precision[(i, j)].to_bits(),
                        "precision ({i},{j}) threads={threads}"
                    );
                    assert_eq!(
                        serial.covariance[(i, j)].to_bits(),
                        par.covariance[(i, j)].to_bits(),
                        "covariance ({i},{j}) threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn markov_blanket_respects_tolerance() {
        let mut prec = Matrix::identity(3);
        prec[(0, 1)] = 0.5;
        prec[(1, 0)] = 0.5;
        prec[(0, 2)] = 1e-8;
        prec[(2, 0)] = 1e-8;
        assert_eq!(markov_blanket(&prec, 0, 1e-6), vec![1]);
        assert_eq!(markov_blanket(&prec, 0, 1e-10), vec![1, 2]);
        assert_eq!(markov_blanket(&prec, 2, 1e-6), Vec::<usize>::new());
    }
}
