//! Error type for the graphical lasso.

use adp_linalg::LinalgError;
use std::fmt;

/// Errors produced by [`crate::graphical_lasso`].
#[derive(Debug, Clone, PartialEq)]
pub enum GlassoError {
    /// The covariance matrix is not square.
    NotSquare {
        /// Actual shape.
        shape: (usize, usize),
    },
    /// The covariance matrix is not symmetric.
    NotSymmetric,
    /// The covariance matrix contains NaN/inf.
    NonFinite,
    /// The ℓ1 penalty is negative or non-finite.
    BadPenalty {
        /// Offending penalty.
        rho: f64,
    },
    /// The inner lasso solver failed.
    Inner(LinalgError),
}

impl fmt::Display for GlassoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlassoError::NotSquare { shape } => {
                write!(f, "covariance must be square, got {}x{}", shape.0, shape.1)
            }
            GlassoError::NotSymmetric => write!(f, "covariance must be symmetric"),
            GlassoError::NonFinite => write!(f, "covariance contains non-finite values"),
            GlassoError::BadPenalty { rho } => write!(f, "invalid penalty rho = {rho}"),
            GlassoError::Inner(e) => write!(f, "inner lasso failure: {e}"),
        }
    }
}

impl std::error::Error for GlassoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GlassoError::Inner(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = GlassoError::Inner(LinalgError::Empty { what: "x" });
        assert!(e.to_string().contains("inner lasso"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&GlassoError::NotSymmetric).is_none());
    }
}
