//! # ActiveDP reproduction — umbrella crate
//!
//! A from-scratch Rust reproduction of *ActiveDP: Bridging Active Learning
//! and Data Programming* (Guan & Koudas, EDBT 2024). This facade re-exports
//! every workspace crate under one roof so the examples and downstream
//! users can depend on a single package:
//!
//! * [`core`] (`activedp`) — the ActiveDP framework itself: the
//!   [`core::ActiveDpSession`] loop, ConFusion aggregation, the ADP
//!   sampler and LabelPick LF selection;
//! * [`baselines`] — Nemo, IWS, Revising-LF and uncertainty sampling under
//!   a common [`baselines::Framework`] trait;
//! * [`serve`] — the concurrent [`serve::SessionHub`]: many sessions by
//!   id, sharded over worker threads, with snapshot persistence and the
//!   `adp-served` JSON-lines network front end;
//! * [`wal`] — the per-step write-ahead log behind the hub's
//!   point-in-time recovery;
//! * [`wire`] — the dependency-free versioned binary codec snapshots are
//!   encoded with;
//! * [`data`] — the eight synthetic benchmark datasets of Table 2;
//! * [`lf`] — label functions, label matrices and the simulated user;
//! * [`labelmodel`] — majority vote, Dawid-Skene EM and the triplet
//!   (MeTaL-style) label model;
//! * [`glasso`] — graphical lasso and Markov-blanket extraction;
//! * [`classifier`] — logistic regression and metrics;
//! * [`sampler`] — passive/uncertainty/LAL/SEU selectors;
//! * [`text`] — tokenizer, vocabulary, TF-IDF;
//! * [`linalg`] — the dense/sparse kernels everything is built on;
//! * [`experiments`] — the §4 evaluation protocol and table/figure runners.
//!
//! ## Quickstart
//!
//! ```
//! use activedp_repro::core::Engine;
//! use activedp_repro::data::{generate, DatasetId, Scale};
//!
//! let data = generate(DatasetId::Youtube, Scale::Tiny, 7).unwrap();
//! let mut engine = Engine::builder(data).seed(7).build().unwrap();
//! engine.run(15).unwrap();
//! let report = engine.evaluate_downstream().unwrap();
//! assert!(report.test_accuracy > 0.4);
//! ```
//!
//! Engines are owned and `Send + 'static`; to serve many sessions
//! concurrently, register them in a [`serve::SessionHub`]:
//!
//! ```
//! use activedp_repro::core::Engine;
//! use activedp_repro::data::{generate, DatasetId, Scale};
//! use activedp_repro::serve::SessionHub;
//!
//! let data = generate(DatasetId::Youtube, Scale::Tiny, 7).unwrap().into_shared();
//! let hub = SessionHub::new(4);
//! let id = hub.open(Engine::builder(data).seed(7)).unwrap();
//! let outcomes = hub.step_batch(id, 5).unwrap();
//! assert_eq!(outcomes.len(), 5);
//! ```

pub use activedp as core;
pub use adp_baselines as baselines;
pub use adp_classifier as classifier;
pub use adp_data as data;
pub use adp_experiments as experiments;
pub use adp_glasso as glasso;
pub use adp_labelmodel as labelmodel;
pub use adp_lf as lf;
pub use adp_linalg as linalg;
pub use adp_oracle as oracle;
pub use adp_sampler as sampler;
pub use adp_serve as serve;
pub use adp_text as text;
pub use adp_wal as wal;
pub use adp_wire as wire;
