//! Serial-vs-parallel bitwise-determinism harness.
//!
//! Every parallel kernel in the workspace routes through
//! `adp_linalg::parallel::map_chunks` under its fixed-chunk reduction
//! contract: chunk boundaries depend only on the problem, grouping-
//! sensitive arithmetic is chunked in the serial path too, and `Execution`
//! is a scheduling hint. This file pins the consequence — **bitwise
//! identical** outputs at every thread count — for:
//!
//! * `map_chunks` itself, across adversarial chunk sizes (1, n−1, n, n+7);
//! * the logreg batch gradient (`LogisticRegression::fit_with`);
//! * TF-IDF vectorisation (`TfidfVectorizer::fit_transform_with`);
//! * the Dawid–Skene EM sweeps (`DawidSkene::fit_with`);
//! * the triplet label model's pairwise-agreement moments
//!   (`TripletMetal::fit_with`);
//! * the glasso column sweep (`graphical_lasso_with`);
//! * the samplers' per-instance scoring (`adp_sampler::score_items` and
//!   whole ADP/US/QBC selections, parallel vs serial);
//! * a full `Engine` trajectory (`EngineBuilder::parallel(false)` vs the
//!   threaded default).
//!
//! Thread counts 1/2/3/7 are swept in-process through
//! `Execution::with_threads`; the CI matrix additionally re-runs the whole
//! suite under `ADP_NUM_THREADS=1` and `=4` to exercise the process-wide
//! budget path.

use activedp_repro::classifier::{LogRegConfig, LogisticRegression, Targets};
use activedp_repro::core::Engine;
use activedp_repro::data::{generate, DatasetId, Scale};
use activedp_repro::glasso::{graphical_lasso_with, GlassoConfig};
use activedp_repro::labelmodel::{predict_all_with, DawidSkene, LabelModel, MajorityVote};
use activedp_repro::lf::{LabelMatrix, ABSTAIN};
use activedp_repro::linalg::parallel::{map_chunks, Execution};
use activedp_repro::linalg::{covariance_matrix, Matrix};
use activedp_repro::text::TfidfVectorizer;

/// Worker counts swept per kernel: degenerate (1), even split (2), uneven
/// split (3), and more threads than some inputs have chunks (7).
const THREADS: [usize; 4] = [1, 2, 3, 7];

fn assert_rows_bitwise(label: &str, a: &[Vec<f64>], b: &[Vec<f64>]) {
    assert_eq!(a.len(), b.len(), "{label}: row count");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "{label}: row {i} length");
        for (j, (x, y)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: ({i},{j}) {x:e} vs {y:e}"
            );
        }
    }
}

fn assert_matrix_bitwise(label: &str, a: &Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "{label}: shape");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: flat index {i}");
    }
}

/// A grouping-sensitive reduction (catastrophically non-associative sums)
/// over adversarial chunk sizes: whatever the chunking, serial and parallel
/// must group identically.
#[test]
fn map_chunks_bitwise_across_threads_and_adversarial_chunks() {
    let n = 1019; // prime, so most chunk sizes split unevenly
    for chunk in [1, n - 1, n, n + 7] {
        let run = |exec: Execution| -> f64 {
            map_chunks(n, chunk, exec, |r| {
                r.map(|i| ((i as f64) * 1e-3).sin() / (i as f64 + 1.0))
                    .sum::<f64>()
            })
            .into_iter()
            .fold(0.0_f64, |acc, x| acc + x)
        };
        let serial = run(Execution::Serial);
        assert_eq!(
            serial.to_bits(),
            run(Execution::parallel()).to_bits(),
            "chunk={chunk} default budget"
        );
        for t in THREADS {
            assert_eq!(
                serial.to_bits(),
                run(Execution::with_threads(t)).to_bits(),
                "chunk={chunk} threads={t}"
            );
        }
    }
}

/// Batch-gradient logreg: the chunked gradient reduction is the original
/// grouping-sensitive kernel; weights and bulk predictions must match to
/// the bit at any thread count.
#[test]
fn logreg_fit_bitwise_across_threads() {
    let n = 3000;
    let d = 24;
    let x = Matrix::from_fn(n, d, |i, j| {
        let signal = if (i % 2 == 0) == (j % 2 == 0) {
            0.7
        } else {
            -0.7
        };
        signal + (((i * 31 + j * 17) % 23) as f64 - 11.0) * 0.04
    });
    let rows: Vec<usize> = (0..n).collect();
    let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
    let cfg = LogRegConfig {
        max_iters: 15,
        ..LogRegConfig::default()
    };
    let fit = |exec: Execution| {
        let mut m = LogisticRegression::new(2, d, cfg);
        m.fit_with(&x, &rows, Targets::Hard(&labels), None, exec)
            .expect("fit succeeds");
        let probs = m.predict_proba_all_with(&x, exec);
        (m, probs)
    };
    let (serial_model, serial_probs) = fit(Execution::Serial);
    for t in THREADS {
        let (par_model, par_probs) = fit(Execution::with_threads(t));
        assert_matrix_bitwise(
            &format!("logreg weights, threads={t}"),
            serial_model.weights(),
            par_model.weights(),
        );
        assert_rows_bitwise(
            &format!("logreg probs, threads={t}"),
            &serial_probs,
            &par_probs,
        );
    }
}

/// TF-IDF: tokenisation and row weighting fan out per document; the
/// vocabulary, idf table and every CSR row must be identical.
#[test]
fn tfidf_fit_transform_bitwise_across_threads() {
    let docs: Vec<String> = (0..400)
        .map(|i| {
            let mut words: Vec<String> = (0..(3 + i % 6))
                .map(|k| format!("tok{}", (i * 29 + k * 13) % 83))
                .collect();
            words.push(format!("rare{}", i % 50));
            words.join(" ")
        })
        .collect();
    let mut serial_v = TfidfVectorizer::default();
    let serial = serial_v.fit_transform_with(&docs, Execution::Serial);
    for t in THREADS {
        let mut par_v = TfidfVectorizer::default();
        let par = par_v.fit_transform_with(&docs, Execution::with_threads(t));
        assert_eq!(serial_v.vocabulary().len(), par_v.vocabulary().len());
        for id in 0..serial_v.vocabulary().len() as u32 {
            assert_eq!(
                serial_v.idf(id).to_bits(),
                par_v.idf(id).to_bits(),
                "idf {id}, threads={t}"
            );
        }
        assert_eq!(serial.encoded_docs, par.encoded_docs, "threads={t}");
        for i in 0..serial.matrix.nrows() {
            let (si, sv) = serial.matrix.row(i);
            let (pi, pv) = par.matrix.row(i);
            assert_eq!(si, pi, "tfidf row {i} columns, threads={t}");
            let sb: Vec<u64> = sv.iter().map(|x| x.to_bits()).collect();
            let pb: Vec<u64> = pv.iter().map(|x| x.to_bits()).collect();
            assert_eq!(sb, pb, "tfidf row {i} values, threads={t}");
        }
    }
}

/// A deterministic planted vote matrix: LF `j` votes the true label with
/// its planted accuracy, abstaining on a coverage pattern — all driven by a
/// multiplicative hash so the fixture needs no RNG.
fn planted_votes(n: usize, accs: &[f64], cov: f64) -> LabelMatrix {
    let unit = |x: u64| (x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64;
    let rows: Vec<Vec<i8>> = (0..n)
        .map(|i| {
            let y = usize::from(unit(i as u64 * 3 + 1) < 0.5);
            accs.iter()
                .enumerate()
                .map(|(j, &a)| {
                    let h = (i * accs.len() + j) as u64;
                    if unit(h * 5 + 2) >= cov {
                        ABSTAIN
                    } else if unit(h * 7 + 3) < a {
                        y as i8
                    } else {
                        (1 - y) as i8
                    }
                })
                .collect()
        })
        .collect();
    LabelMatrix::from_votes(&rows).unwrap()
}

/// Dawid–Skene EM: the E-step posteriors are pure per-row work and the
/// M-step merges per-chunk count partials in chunk order; prior, confusion
/// tables and posteriors must match to the bit.
#[test]
fn dawid_skene_fit_bitwise_across_threads() {
    let votes = planted_votes(1700, &[0.92, 0.8, 0.66, 0.55, 0.5], 0.65);
    // Free prior (exercises the prior-partial merge path).
    let mut serial = DawidSkene::new(2);
    serial.fit_with(&votes, None, Execution::Serial).unwrap();
    let serial_probs = predict_all_with(&serial, &votes, Execution::Serial);
    for t in THREADS {
        let mut par = DawidSkene::new(2);
        par.fit_with(&votes, None, Execution::with_threads(t))
            .unwrap();
        for (a, b) in serial.prior().iter().zip(par.prior()) {
            assert_eq!(a.to_bits(), b.to_bits(), "DS prior, threads={t}");
        }
        for j in 0..votes.n_lfs() {
            for (ra, rb) in serial.confusion(j).iter().zip(par.confusion(j)) {
                for (a, b) in ra.iter().zip(rb) {
                    assert_eq!(a.to_bits(), b.to_bits(), "DS theta[{j}], threads={t}");
                }
            }
            assert_eq!(
                serial.lf_accuracy(j).to_bits(),
                par.lf_accuracy(j).to_bits(),
                "DS lf_accuracy[{j}], threads={t}"
            );
        }
        let par_probs = predict_all_with(&par, &votes, Execution::with_threads(t));
        assert_rows_bitwise(
            &format!("DS posteriors, threads={t}"),
            &serial_probs,
            &par_probs,
        );
    }
}

/// Bulk prediction through the trait object (`predict_all_with`) is pure
/// per-row work for every model, not just Dawid–Skene.
#[test]
fn predict_all_bitwise_across_threads() {
    let votes = planted_votes(1500, &[0.9, 0.7, 0.6], 0.7);
    let mut mv = MajorityVote::new(2);
    mv.fit(&votes, None).unwrap();
    let serial = predict_all_with(&mv, &votes, Execution::Serial);
    for t in THREADS {
        let par = predict_all_with(&mv, &votes, Execution::with_threads(t));
        assert_rows_bitwise(&format!("majority posteriors, threads={t}"), &serial, &par);
    }
}

/// Glasso: the per-column subproblem setup, residual products and the
/// precision recovery fan out; the warm-started column order is untouched,
/// so covariance, precision and the sweep count must match exactly.
#[test]
fn glasso_bitwise_across_threads() {
    let data = Matrix::from_fn(350, 52, |i, j| {
        (((i * 11 + j * 7) % 19) as f64 - 9.0) * 0.1 + (i % 4) as f64 * 0.05 * (j % 5) as f64
    });
    let s = covariance_matrix(&data).unwrap();
    let cfg = GlassoConfig {
        rho: 0.08,
        ..GlassoConfig::default()
    };
    let serial = graphical_lasso_with(&s, cfg, Execution::Serial).unwrap();
    for t in THREADS {
        let par = graphical_lasso_with(&s, cfg, Execution::with_threads(t)).unwrap();
        assert_eq!(serial.sweeps, par.sweeps, "glasso sweeps, threads={t}");
        assert_matrix_bitwise(
            &format!("glasso precision, threads={t}"),
            &serial.precision,
            &par.precision,
        );
        assert_matrix_bitwise(
            &format!("glasso covariance, threads={t}"),
            &serial.covariance,
            &par.covariance,
        );
    }
}

/// The end-to-end pin: a session stepped with the refit-stage kernels
/// forced serial (`EngineBuilder::parallel(false)`; LF application and
/// covariance assembly keep their own `auto` policy, which is itself
/// bitwise-invariant) reproduces the threaded default bit for bit —
/// queries, LF picks, LabelPick selections and the downstream evaluation.
#[test]
fn engine_trajectory_serial_matches_parallel() {
    const ITERS: usize = 12;
    let data = generate(DatasetId::Youtube, Scale::Tiny, 7)
        .expect("dataset generates")
        .into_shared();
    let run = |parallel: bool| {
        let mut engine = Engine::builder(data.clone())
            .seed(7)
            .parallel(parallel)
            .build()
            .unwrap();
        let mut trajectory = Vec::new();
        for _ in 0..ITERS {
            let out = engine.step().unwrap();
            trajectory.push((
                out.query,
                out.lf.as_ref().map(|lf| format!("{:?}", lf.key())),
                out.n_lfs,
                out.n_selected,
            ));
        }
        let report = engine.evaluate_downstream().unwrap();
        (
            trajectory,
            engine.state().selected.clone(),
            report.test_accuracy.to_bits(),
            report.label_coverage.to_bits(),
            report.threshold.map(f64::to_bits),
        )
    };
    assert_eq!(run(false), run(true));
}

/// Triplet label model: the pairwise-agreement moment accumulation fans
/// instance chunks out; partials are exact ±1 sums, so accuracies, priors
/// and posteriors must match serial to the bit at any thread count.
#[test]
fn triplet_fit_bitwise_across_threads() {
    use activedp_repro::labelmodel::TripletMetal;
    let votes = planted_votes(2100, &[0.93, 0.81, 0.72, 0.64, 0.58, 0.52], 0.6);
    let mut serial = TripletMetal::new(2);
    serial
        .fit_with(&votes, Some(&[0.4, 0.6]), Execution::Serial)
        .unwrap();
    let serial_probs = predict_all_with(&serial, &votes, Execution::Serial);
    for t in THREADS {
        let mut par = TripletMetal::new(2);
        par.fit_with(&votes, Some(&[0.4, 0.6]), Execution::with_threads(t))
            .unwrap();
        for (j, (a, b)) in serial.accuracies().iter().zip(par.accuracies()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "triplet accuracy[{j}], threads={t}"
            );
        }
        let par_probs = predict_all_with(&par, &votes, Execution::with_threads(t));
        assert_rows_bitwise(
            &format!("triplet posteriors, threads={t}"),
            &serial_probs,
            &par_probs,
        );
    }
}

/// The sampler scoring helper: chunked per-item scores must come back in
/// item order with identical bits at every thread count.
#[test]
fn sampler_score_items_bitwise_across_threads() {
    use activedp_repro::sampler::score_items_with;
    let items: Vec<usize> = (0..9001).collect();
    let score = |&i: &usize| ((i as f64) * 1e-3).sin().abs().powf(0.37) / (i as f64 + 1.0);
    let serial = score_items_with(&items, Execution::Serial, score);
    assert_eq!(serial.len(), items.len());
    for t in THREADS {
        let par = score_items_with(&items, Execution::with_threads(t), score);
        let sb: Vec<u64> = serial.iter().map(|x| x.to_bits()).collect();
        let pb: Vec<u64> = par.iter().map(|x| x.to_bits()).collect();
        assert_eq!(sb, pb, "score_items threads={t}");
    }
}

/// Whole-sampler pin: with a pool large enough to engage the parallel
/// scoring path, serial and parallel samplers draw identical query
/// sequences (ties included — the tie-break RNG consumes the same stream
/// because the scores are bitwise identical).
#[test]
fn sampler_selection_serial_matches_parallel() {
    use activedp_repro::core::AdpSampler;
    use activedp_repro::sampler::{Committee, Sampler, SamplerContext, Uncertainty};

    let n = 8192;
    let d = activedp_repro::data::Dataset {
        name: "pool".into(),
        task: activedp_repro::data::Task::OccupancyPrediction,
        n_classes: 2,
        features: activedp_repro::data::FeatureSet::Dense(Matrix::from_fn(n, 2, |i, j| {
            (i as f64 / n as f64 - 0.5) * (j as f64 + 1.0)
        })),
        labels: (0..n).map(|i| usize::from(i >= n / 2)).collect(),
        texts: None,
        encoded_docs: None,
    };
    // Heavily tied probabilities so the reservoir tie-break runs hot.
    let probs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let p = 0.5 + ((i % 7) as f64) * 0.05;
            vec![1.0 - p, p]
        })
        .collect();

    let draw_uncertainty = |parallel: bool| {
        let mut queried = vec![false; n];
        let mut s = Uncertainty::new(11);
        s.parallel = parallel;
        (0..40)
            .map(|_| {
                let ctx = SamplerContext {
                    train: &d,
                    queried: &queried,
                    al_probs: Some(&probs),
                    lm_probs: None,
                    n_labeled: 0,
                    space: None,
                    seen_lfs: None,
                    candidates: None,
                };
                let pick = s.select(&ctx).unwrap();
                queried[pick] = true;
                pick
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(draw_uncertainty(false), draw_uncertainty(true));

    let draw_adp = |parallel: bool| {
        let mut queried = vec![false; n];
        let mut s = AdpSampler::new(0.5, 13);
        s.parallel = parallel;
        (0..40)
            .map(|_| {
                let ctx = SamplerContext {
                    train: &d,
                    queried: &queried,
                    al_probs: Some(&probs),
                    lm_probs: Some(&probs),
                    n_labeled: 0,
                    space: None,
                    seen_lfs: None,
                    candidates: None,
                };
                let pick = s.select(&ctx).unwrap();
                queried[pick] = true;
                pick
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(draw_adp(false), draw_adp(true));

    let draw_qbc = |parallel: bool| {
        let queried = vec![false; n];
        let mut s = Committee::new(17, 3);
        s.parallel = parallel;
        s.max_candidates = n; // score the whole pool through the chunked path
        s.set_labeled(&[0, 1, n - 2, n - 1], &[0, 0, 1, 1]);
        let ctx = SamplerContext {
            train: &d,
            queried: &queried,
            al_probs: None,
            lm_probs: None,
            n_labeled: 4,
            space: None,
            seen_lfs: None,
            candidates: None,
        };
        (0..3).map(|_| s.select(&ctx).unwrap()).collect::<Vec<_>>()
    };
    assert_eq!(draw_qbc(false), draw_qbc(true));
}
