//! Golden-bytes pin of the snapshot wire format.
//!
//! `tests/fixtures/snapshot_v3.bin` is a committed encoding of a fixed
//! mid-run session (Youtube · Tiny · dataset seed 7 · session seed 7 ·
//! 6 steps). Today's encoder must reproduce it **byte for byte**: the
//! whole pipeline — dataset generation, trajectory, RNG streams, codec —
//! is deterministic and platform-independent (explicit little-endian,
//! sorted key sets), so any diff here is a *format or behaviour change*,
//! and either must come with a deliberate `SNAPSHOT_VERSION` bump plus a
//! regenerated fixture — never as an accident.
//!
//! `tests/fixtures/snapshot_v2.bin` is the same session in the previous
//! format (before the spec carried a candidate strategy) and pins the
//! back-compat decode path: old spill files must keep resuming, with the
//! strategy defaulting to `Exact`. (v1, the pre-scenario format without
//! embedded dataset provenance, stays retired.)
//!
//! Regenerate the current fixture after an intentional bump with:
//! `ADP_REGEN_FIXTURES=1 cargo test --test snapshot_golden`.

use activedp_repro::core::{
    CandidateStrategy, Engine, SessionConfig, SessionSnapshot, SNAPSHOT_VERSION,
};
use activedp_repro::data::{generate, DatasetId, Scale};
use std::path::PathBuf;

const FIXTURE: &str = "tests/fixtures/snapshot_v3.bin";

/// The previous-format encoding of the same session, committed when
/// `SNAPSHOT_VERSION` was 2. Never regenerated — old bytes don't change.
const FIXTURE_V2: &str = "tests/fixtures/snapshot_v2.bin";

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE)
}

fn fixture_snapshot() -> SessionSnapshot {
    let data = generate(DatasetId::Youtube, Scale::Tiny, 7).expect("dataset generates");
    let mut engine = Engine::builder(data)
        .config(SessionConfig::paper_defaults(true, 7))
        .build()
        .expect("engine builds");
    engine.run(6).expect("fixture trajectory");
    engine.snapshot().expect("snapshot captures")
}

#[test]
fn encoder_reproduces_the_committed_fixture_byte_for_byte() {
    let bytes = fixture_snapshot().to_bytes();
    if std::env::var_os("ADP_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
        std::fs::write(fixture_path(), &bytes).unwrap();
        panic!(
            "fixture regenerated at {} — commit it and re-run without ADP_REGEN_FIXTURES",
            fixture_path().display()
        );
    }
    let golden = std::fs::read(fixture_path())
        .expect("fixture file exists (regenerate with ADP_REGEN_FIXTURES=1)");
    assert_eq!(
        bytes.len(),
        golden.len(),
        "encoded length changed — snapshot format drift without a version bump?"
    );
    let first_diff = bytes.iter().zip(&golden).position(|(a, b)| a != b);
    assert_eq!(
        first_diff, None,
        "encoded bytes diverge from the committed fixture at offset {first_diff:?} — \
         bump SNAPSHOT_VERSION and regenerate deliberately"
    );
}

#[test]
fn committed_fixture_still_decodes_and_resumes() {
    let golden = std::fs::read(fixture_path()).expect("fixture file exists");
    let snapshot = SessionSnapshot::from_bytes(&golden).expect("fixture decodes");
    assert_eq!(snapshot.state.iteration, 6);
    assert_eq!(snapshot.config().seed, 7);
    assert_eq!(snapshot.spec.dataset.seed, 7);
    // And it is a *live* artefact: the embedded spec regenerates the
    // dataset, so the bytes alone resume into a running session.
    let mut engine = Engine::resume(snapshot).unwrap();
    engine.step().unwrap();
    assert_eq!(engine.state().iteration, 7);
}

#[test]
fn previous_format_spill_files_still_resume() {
    // The committed v2 bytes (written before the candidate strategy
    // existed) must decode with `Exact` — what every v2 session ran — and
    // resume onto the *identical* trajectory: stepping the resumed session
    // must reproduce today's same-seed run bit for bit.
    let old = std::fs::read(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE_V2))
        .expect("committed v2 fixture exists");
    let snapshot = SessionSnapshot::from_bytes(&old).expect("v2 decodes");
    assert_eq!(snapshot.state.iteration, 6);
    assert_eq!(snapshot.config().candidates, CandidateStrategy::Exact);
    let mut resumed = Engine::resume(snapshot).unwrap();
    resumed.step().unwrap();
    let fresh = {
        let snapshot = fixture_snapshot();
        let mut engine = Engine::resume(snapshot).unwrap();
        engine.step().unwrap();
        engine
    };
    assert_eq!(
        resumed.snapshot().unwrap().to_bytes(),
        fresh.snapshot().unwrap().to_bytes(),
        "a v2 spill file must resume onto today's exact trajectory"
    );
}

#[test]
fn unknown_versions_are_rejected_with_a_typed_error_not_a_panic() {
    let mut future = fixture_snapshot().to_bytes();
    let next = SNAPSHOT_VERSION + 1;
    future[8..12].copy_from_slice(&next.to_le_bytes());
    let err = SessionSnapshot::from_bytes(&future).unwrap_err();
    match err {
        activedp_repro::core::ActiveDpError::SnapshotCodec(
            activedp_repro::wire::WireError::UnknownVersion { found, supported },
        ) => {
            assert_eq!(found, next);
            assert_eq!(supported, SNAPSHOT_VERSION);
        }
        other => panic!("expected UnknownVersion, got {other:?}"),
    }
    // The retired pre-scenario v1 is also still rejected.
    let mut ancient = fixture_snapshot().to_bytes();
    ancient[8..12].copy_from_slice(&1u32.to_le_bytes());
    assert!(SessionSnapshot::from_bytes(&ancient).is_err());
}
