//! Golden-bytes pin of the snapshot wire format.
//!
//! `tests/fixtures/snapshot_v4.bin` is a committed encoding of a fixed
//! mid-run *routed, drifted* session (Youtube · Tiny · dataset seed 7 ·
//! session seed 7 · noisy oracle · label shift at 4 · 6 steps — so the
//! bytes exercise the router ledger and the post-drift pool state).
//! Today's encoder must reproduce it **byte for byte**: the whole
//! pipeline — dataset generation, trajectory, RNG streams, codec — is
//! deterministic and platform-independent (explicit little-endian, sorted
//! key sets), so any diff here is a *format or behaviour change*, and
//! either must come with a deliberate `SNAPSHOT_VERSION` bump plus a
//! regenerated fixture — never as an accident.
//!
//! `tests/fixtures/snapshot_v3.bin` (before the spec carried an oracle or
//! drift and the snapshot a router ledger) and
//! `tests/fixtures/snapshot_v2.bin` (before the candidate strategy
//! either) pin the back-compat decode paths: old spill files must keep
//! resuming, with each missing field at the default every old session
//! effectively ran. They are never regenerated — old bytes don't change.
//! (v1, the pre-scenario format without embedded dataset provenance,
//! stays retired.)
//!
//! Regenerate the current fixture after an intentional bump with:
//! `ADP_REGEN_FIXTURES=1 cargo test --test snapshot_golden`.

use activedp_repro::core::{
    CandidateStrategy, Engine, OracleKind, ScenarioSpec, SessionConfig, SessionSnapshot,
    SNAPSHOT_VERSION,
};
use activedp_repro::data::{generate, DatasetId, DatasetSpec, DriftSpec, Scale};
use std::path::PathBuf;

const FIXTURE: &str = "tests/fixtures/snapshot_v4.bin";

/// The previous-format encoding of the *plain* session, committed when
/// `SNAPSHOT_VERSION` was 3. Never regenerated — old bytes don't change.
const FIXTURE_V3: &str = "tests/fixtures/snapshot_v3.bin";

/// The format before that (no candidate strategy), committed when
/// `SNAPSHOT_VERSION` was 2.
const FIXTURE_V2: &str = "tests/fixtures/snapshot_v2.bin";

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE)
}

/// The current fixture session: routed between the simulated user and a
/// cheap noisy oracle, with a label shift applied mid-run — the snapshot
/// carries the router's cost ledger and the post-drift loop state.
fn routed_fixture_snapshot() -> SessionSnapshot {
    let mut spec = ScenarioSpec::new(DatasetSpec {
        id: DatasetId::Youtube,
        scale: Scale::Tiny,
        seed: 7,
    });
    spec.session.seed = 7;
    spec.session.oracle = "noisy:0.8>1@uncertainty:0.3".parse().expect("grammar");
    spec.drift = DriftSpec::LabelShift { at: 4, prior: 0.8 };
    spec.budget = 12;
    let mut engine = Engine::from_spec(spec).expect("engine builds");
    engine.run(6).expect("fixture trajectory");
    engine.snapshot().expect("snapshot captures")
}

/// The plain session the v2/v3 fixtures froze: simulated oracle, no
/// drift — what every pre-v4 session ran.
fn fixture_snapshot() -> SessionSnapshot {
    let data = generate(DatasetId::Youtube, Scale::Tiny, 7).expect("dataset generates");
    let mut engine = Engine::builder(data)
        .config(SessionConfig::paper_defaults(true, 7))
        .build()
        .expect("engine builds");
    engine.run(6).expect("fixture trajectory");
    engine.snapshot().expect("snapshot captures")
}

#[test]
fn encoder_reproduces_the_committed_fixture_byte_for_byte() {
    let bytes = routed_fixture_snapshot().to_bytes();
    if std::env::var_os("ADP_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
        std::fs::write(fixture_path(), &bytes).unwrap();
        panic!(
            "fixture regenerated at {} — commit it and re-run without ADP_REGEN_FIXTURES",
            fixture_path().display()
        );
    }
    let golden = std::fs::read(fixture_path())
        .expect("fixture file exists (regenerate with ADP_REGEN_FIXTURES=1)");
    assert_eq!(
        bytes.len(),
        golden.len(),
        "encoded length changed — snapshot format drift without a version bump?"
    );
    let first_diff = bytes.iter().zip(&golden).position(|(a, b)| a != b);
    assert_eq!(
        first_diff, None,
        "encoded bytes diverge from the committed fixture at offset {first_diff:?} — \
         bump SNAPSHOT_VERSION and regenerate deliberately"
    );
}

#[test]
fn committed_fixture_still_decodes_and_resumes() {
    let golden = std::fs::read(fixture_path()).expect("fixture file exists");
    let snapshot = SessionSnapshot::from_bytes(&golden).expect("fixture decodes");
    assert_eq!(snapshot.state.iteration, 6);
    assert_eq!(snapshot.config().seed, 7);
    assert_eq!(snapshot.spec.dataset.seed, 7);
    assert!(matches!(
        snapshot.spec.session.oracle,
        OracleKind::Noisy { .. }
    ));
    assert_eq!(
        snapshot.spec.drift,
        DriftSpec::LabelShift { at: 4, prior: 0.8 }
    );
    // The router's cost ledger rode along.
    let routed = snapshot.routed.as_ref().expect("routed state captured");
    assert!(routed.stats.cheap_queries + routed.stats.expensive_queries > 0);
    // And it is a *live* artefact: the embedded spec regenerates the
    // dataset, so the bytes alone resume into a running session.
    let mut engine = Engine::resume(snapshot).unwrap();
    engine.step().unwrap();
    assert_eq!(engine.state().iteration, 7);
}

#[test]
fn v3_format_spill_files_still_resume() {
    // The committed v3 bytes (written before the oracle, drift and router
    // fields) must decode with the simulated-oracle defaults — what every
    // v3 session ran — and resume onto the *identical* trajectory:
    // stepping the resumed session must reproduce today's same-seed run
    // bit for bit.
    let old = std::fs::read(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE_V3))
        .expect("committed v3 fixture exists");
    let snapshot = SessionSnapshot::from_bytes(&old).expect("v3 decodes");
    assert_eq!(snapshot.state.iteration, 6);
    assert_eq!(snapshot.spec.session.oracle, OracleKind::Simulated);
    assert_eq!(snapshot.spec.drift, DriftSpec::None);
    assert!(snapshot.routed.is_none());
    let mut resumed = Engine::resume(snapshot).unwrap();
    resumed.step().unwrap();
    let fresh = {
        let snapshot = fixture_snapshot();
        let mut engine = Engine::resume(snapshot).unwrap();
        engine.step().unwrap();
        engine
    };
    assert_eq!(
        resumed.snapshot().unwrap().to_bytes(),
        fresh.snapshot().unwrap().to_bytes(),
        "a v3 spill file must resume onto today's exact trajectory"
    );
}

#[test]
fn v2_format_spill_files_still_resume() {
    // Two formats back: no candidate strategy either.
    let old = std::fs::read(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE_V2))
        .expect("committed v2 fixture exists");
    let snapshot = SessionSnapshot::from_bytes(&old).expect("v2 decodes");
    assert_eq!(snapshot.state.iteration, 6);
    assert_eq!(snapshot.config().candidates, CandidateStrategy::Exact);
    assert_eq!(snapshot.spec.session.oracle, OracleKind::Simulated);
    assert!(snapshot.routed.is_none());
    let mut resumed = Engine::resume(snapshot).unwrap();
    resumed.step().unwrap();
    let fresh = {
        let snapshot = fixture_snapshot();
        let mut engine = Engine::resume(snapshot).unwrap();
        engine.step().unwrap();
        engine
    };
    assert_eq!(
        resumed.snapshot().unwrap().to_bytes(),
        fresh.snapshot().unwrap().to_bytes(),
        "a v2 spill file must resume onto today's exact trajectory"
    );
}

#[test]
fn unknown_versions_are_rejected_with_a_typed_error_not_a_panic() {
    let mut future = routed_fixture_snapshot().to_bytes();
    let next = SNAPSHOT_VERSION + 1;
    future[8..12].copy_from_slice(&next.to_le_bytes());
    let err = SessionSnapshot::from_bytes(&future).unwrap_err();
    match err {
        activedp_repro::core::ActiveDpError::SnapshotCodec(
            activedp_repro::wire::WireError::UnknownVersion { found, supported },
        ) => {
            assert_eq!(found, next);
            assert_eq!(supported, SNAPSHOT_VERSION);
        }
        other => panic!("expected UnknownVersion, got {other:?}"),
    }
    // The retired pre-scenario v1 is also still rejected.
    let mut ancient = routed_fixture_snapshot().to_bytes();
    ancient[8..12].copy_from_slice(&1u32.to_le_bytes());
    assert!(SessionSnapshot::from_bytes(&ancient).is_err());
}
