//! End-to-end integration tests: every framework on miniature versions of
//! the paper's datasets, checking that learning actually happens and runs
//! are reproducible.

use activedp_repro::baselines::{Framework, Iws, Nemo, RevisingLf, UncertaintySampling};
use activedp_repro::core::{ActiveDpSession, SessionConfig};
use activedp_repro::data::{generate, DatasetId, Scale};

fn drive(fw: &mut dyn Framework, iters: usize) -> f64 {
    for _ in 0..iters {
        fw.step().expect("step succeeds");
    }
    fw.evaluate().expect("evaluate succeeds").test_accuracy
}

#[test]
fn activedp_beats_chance_on_text_and_tabular() {
    for (id, floor) in [(DatasetId::Youtube, 0.60), (DatasetId::Occupancy, 0.80)] {
        let data = generate(id, Scale::Tiny, 21).expect("dataset generates");
        let cfg = SessionConfig::paper_defaults(id.is_textual(), 21);
        let mut session = ActiveDpSession::new(data, cfg).expect("session builds");
        let acc = drive(&mut session, 30);
        assert!(acc > floor, "{}: accuracy {acc}", id.name());
    }
}

#[test]
fn every_framework_completes_the_protocol_on_text() {
    let data = generate(DatasetId::Youtube, Scale::Tiny, 22)
        .expect("dataset generates")
        .into_shared();
    let cfg = SessionConfig::paper_defaults(true, 22);
    let mut frameworks: Vec<Box<dyn Framework>> = vec![
        Box::new(ActiveDpSession::new(data.clone(), cfg).expect("session builds")),
        Box::new(Nemo::new(&data, 22)),
        Box::new(Iws::new(&data, 22)),
        Box::new(RevisingLf::new(&data, 22)),
        Box::new(UncertaintySampling::new(&data, 22)),
    ];
    for fw in &mut frameworks {
        let acc = drive(fw.as_mut(), 20);
        assert!(
            (0.0..=1.0).contains(&acc),
            "{} produced accuracy {acc}",
            fw.name()
        );
    }
}

#[test]
fn every_non_nemo_framework_completes_on_tabular() {
    let data = generate(DatasetId::Census, Scale::Tiny, 23)
        .expect("dataset generates")
        .into_shared();
    let cfg = SessionConfig::paper_defaults(false, 23);
    let mut frameworks: Vec<Box<dyn Framework>> = vec![
        Box::new(ActiveDpSession::new(data.clone(), cfg).expect("session builds")),
        Box::new(Iws::new(&data, 23)),
        Box::new(RevisingLf::new(&data, 23)),
        Box::new(UncertaintySampling::new(&data, 23)),
    ];
    for fw in &mut frameworks {
        let acc = drive(fw.as_mut(), 20);
        assert!(acc > 0.4, "{}: accuracy {acc}", fw.name());
    }
}

#[test]
fn runs_are_deterministic_given_seed() {
    let run = || {
        let data = generate(DatasetId::Imdb, Scale::Tiny, 24).expect("dataset generates");
        let cfg = SessionConfig::paper_defaults(true, 24);
        let mut session = ActiveDpSession::new(data, cfg).expect("session builds");
        let acc = drive(&mut session, 15);
        (
            acc.to_bits(),
            session.lfs().len(),
            session.selected().to_vec(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_explore_differently() {
    let run = |seed: u64| {
        let data = generate(DatasetId::Imdb, Scale::Tiny, seed).expect("dataset generates");
        let cfg = SessionConfig::paper_defaults(true, seed);
        let mut session = ActiveDpSession::new(data, cfg).expect("session builds");
        session.run(10).expect("session runs");
        session
            .pseudo_labelled()
            .map(|(q, _)| q)
            .collect::<Vec<_>>()
    };
    assert_ne!(run(31), run(32));
}

#[test]
fn learning_improves_with_budget() {
    // Average over seeds: accuracy with a 40-query budget should not be
    // dramatically below a 10-query budget, and typically above.
    let mut short = 0.0;
    let mut long = 0.0;
    for seed in 40..43 {
        let data = generate(DatasetId::Occupancy, Scale::Tiny, seed).expect("dataset generates");
        let cfg = SessionConfig::paper_defaults(false, seed);
        let mut session = ActiveDpSession::new(data, cfg).expect("session builds");
        session.run(10).expect("session runs");
        short += session
            .evaluate_downstream()
            .expect("evaluation succeeds")
            .test_accuracy;
        session.run(30).expect("session runs");
        long += session
            .evaluate_downstream()
            .expect("evaluation succeeds")
            .test_accuracy;
    }
    assert!(
        long >= short - 0.05 * 3.0,
        "budget hurt badly: short {short} long {long}"
    );
}

#[test]
fn full_protocol_runner_produces_curves() {
    use activedp_repro::experiments::{run_framework_curve, Method, ProtocolConfig};
    let cfg = ProtocolConfig::tiny();
    let curve =
        run_framework_curve(DatasetId::Youtube, Method::ActiveDp, &cfg).expect("protocol runs");
    assert_eq!(curve.points.len(), cfg.iterations / cfg.eval_every);
    assert!(curve.points.iter().all(|&(_, a)| (0.0..=1.0).contains(&a)));
    assert!(curve.auc() > 0.3);
}
