//! Determinism/parity tests for the staged `Engine` refactor.
//!
//! The golden fixture below was captured from the *pre-refactor* monolithic
//! `ActiveDpSession` (single `session.rs`, serial kernels) on
//! `DatasetId::Youtube` at `Scale::Tiny`, dataset seed 7, session seed 7,
//! 15 iterations. The staged engine — and the facade on top of it — must
//! reproduce that trajectory seed-for-seed: same query instances, same LF
//! picks, same LabelPick selections, same final accuracy to the last bit.

use activedp_repro::core::{ActiveDpSession, CandidateStrategy, Engine, SessionConfig};
use activedp_repro::data::{generate, DatasetId, Scale, SharedDataset};

const ITERS: usize = 15;

/// Queries issued by the pre-refactor session (None = oracle answered but
/// produced no LF that iteration — index 117 returned no LF).
const GOLDEN_QUERIES: [usize; ITERS] =
    [88, 101, 39, 117, 119, 27, 23, 66, 51, 116, 0, 3, 30, 8, 86];

/// Debug rendering of each returned LF's key (`None` where the oracle had
/// no rule for the instance).
const GOLDEN_LF_KEYS: [Option<&str>; ITERS] = [
    Some("Keyword(21, 1)"),
    Some("Keyword(189, 1)"),
    Some("Keyword(354, 1)"),
    None,
    Some("Keyword(22, 1)"),
    Some("Keyword(28, 0)"),
    Some("Keyword(222, 0)"),
    Some("Keyword(289, 0)"),
    Some("Keyword(173, 0)"),
    Some("Keyword(164, 0)"),
    Some("Keyword(343, 1)"),
    Some("Keyword(305, 1)"),
    Some("Keyword(272, 0)"),
    Some("Keyword(0, 0)"),
    Some("Keyword(190, 1)"),
];

/// LabelPick's selected-LF count after each iteration.
const GOLDEN_N_SELECTED: [usize; ITERS] = [1, 2, 2, 2, 3, 3, 4, 4, 5, 6, 7, 8, 9, 10, 11];

/// Final LabelPick selection (indices into the LF list).
const GOLDEN_SELECTED: [usize; 11] = [0, 1, 3, 5, 7, 8, 9, 10, 11, 12, 13];

/// Final downstream metrics (bitwise: both values are exactly
/// representable products of the deterministic pipeline).
const GOLDEN_TEST_ACCURACY: f64 = 0.6;
const GOLDEN_LABEL_COVERAGE: f64 = 0.45;
const GOLDEN_THRESHOLD: f64 = 0.773_338_958_871_232_5;

fn fixture() -> (SharedDataset, SessionConfig) {
    let data = generate(DatasetId::Youtube, Scale::Tiny, 7)
        .expect("dataset generates")
        .into_shared();
    let cfg = SessionConfig::paper_defaults(true, 7);
    (data, cfg)
}

fn assert_golden_trajectory(
    queries: &[Option<usize>],
    lf_keys: &[Option<String>],
    n_selected: &[usize],
) {
    let expected_queries: Vec<Option<usize>> = GOLDEN_QUERIES.iter().map(|&q| Some(q)).collect();
    assert_eq!(
        queries,
        expected_queries.as_slice(),
        "query sequence diverged"
    );
    let expected_keys: Vec<Option<String>> = GOLDEN_LF_KEYS
        .iter()
        .map(|k| k.map(str::to_string))
        .collect();
    assert_eq!(lf_keys, expected_keys.as_slice(), "LF picks diverged");
    assert_eq!(
        n_selected, GOLDEN_N_SELECTED,
        "LabelPick trajectory diverged"
    );
}

#[test]
fn engine_matches_golden_trajectory() {
    let (data, cfg) = fixture();
    let mut engine = Engine::builder(data).config(cfg).build().unwrap();
    let mut queries = Vec::new();
    let mut lf_keys = Vec::new();
    let mut n_selected = Vec::new();
    for _ in 0..ITERS {
        let out = engine.step().unwrap();
        queries.push(out.query);
        lf_keys.push(out.lf.as_ref().map(|lf| format!("{:?}", lf.key())));
        n_selected.push(out.n_selected);
    }
    assert_golden_trajectory(&queries, &lf_keys, &n_selected);
    assert_eq!(engine.state().selected, GOLDEN_SELECTED);

    let report = engine.evaluate_downstream().unwrap();
    assert_eq!(
        report.test_accuracy.to_bits(),
        GOLDEN_TEST_ACCURACY.to_bits(),
        "test accuracy {} != golden {}",
        report.test_accuracy,
        GOLDEN_TEST_ACCURACY
    );
    assert_eq!(
        report.label_coverage.to_bits(),
        GOLDEN_LABEL_COVERAGE.to_bits()
    );
    let tau = report.threshold.expect("ConFusion enabled");
    assert_eq!(
        tau.to_bits(),
        GOLDEN_THRESHOLD.to_bits(),
        "threshold {tau} != golden {GOLDEN_THRESHOLD}"
    );
}

/// `CandidateStrategy::Exact` — the default, but also when set explicitly —
/// must leave the golden trajectory untouched down to the snapshot bytes:
/// the candidate-strategy plumbing may only change behaviour under `Ann`.
#[test]
fn explicit_exact_strategy_matches_golden_trajectory() {
    let (data, cfg) = fixture();
    let mut engine = Engine::builder(data.clone())
        .config(cfg.clone())
        .candidates(CandidateStrategy::Exact)
        .build()
        .unwrap();
    let mut queries = Vec::new();
    let mut lf_keys = Vec::new();
    let mut n_selected = Vec::new();
    for _ in 0..ITERS {
        let out = engine.step().unwrap();
        queries.push(out.query);
        lf_keys.push(out.lf.as_ref().map(|lf| format!("{:?}", lf.key())));
        n_selected.push(out.n_selected);
    }
    assert_golden_trajectory(&queries, &lf_keys, &n_selected);
    let report = engine.evaluate_downstream().unwrap();
    assert_eq!(
        report.test_accuracy.to_bits(),
        GOLDEN_TEST_ACCURACY.to_bits()
    );

    // And byte-for-byte: a default-config run ends in the identical state.
    let mut default_engine = Engine::builder(data).config(cfg).build().unwrap();
    default_engine.run(ITERS).unwrap();
    assert_eq!(
        engine.snapshot().unwrap().to_bytes(),
        default_engine.snapshot().unwrap().to_bytes(),
        "explicit Exact must be bitwise the default"
    );
}

/// The `Ann` strategy end-to-end: the run completes, is deterministic, and
/// snapshot/resume lands on the identical trajectory (the IVF index is
/// rebuilt on resume, never serialized).
#[test]
fn ann_strategy_runs_deterministically_and_resumes() {
    let (data, cfg) = fixture();
    let ann = CandidateStrategy::Ann {
        nprobe: 2,
        refresh_every: 2,
    };
    let run = |steps: usize| {
        let mut engine = Engine::builder(data.clone())
            .config(cfg.clone())
            .candidates(ann)
            .build()
            .unwrap();
        engine.run(steps).unwrap();
        engine
    };
    let full = run(ITERS);
    let full_bytes = full.snapshot().unwrap().to_bytes();
    assert_eq!(
        full_bytes,
        run(ITERS).snapshot().unwrap().to_bytes(),
        "two identical Ann runs must agree bitwise"
    );
    // Interrupt mid-run (after the models exist, so the index is live),
    // resume from bytes alone, finish: same final state.
    let half = run(9);
    let parked = half.snapshot().unwrap().to_bytes();
    let restored = activedp_repro::core::SessionSnapshot::from_bytes(&parked).unwrap();
    assert_eq!(restored.config().candidates, ann);
    let mut resumed = Engine::resume(restored).unwrap();
    resumed.run(ITERS - 9).unwrap();
    assert_eq!(
        resumed.snapshot().unwrap().to_bytes(),
        full_bytes,
        "Ann resume must reproduce the uninterrupted trajectory"
    );
    // The sublinear path must still reach a sane model on this fixture.
    let report = full.evaluate_downstream().unwrap();
    assert!(
        report.test_accuracy > 0.4,
        "Ann accuracy collapsed: {}",
        report.test_accuracy
    );
}

#[test]
fn facade_matches_golden_trajectory() {
    let (data, cfg) = fixture();
    let mut session = ActiveDpSession::new(data, cfg).unwrap();
    let mut queries = Vec::new();
    let mut lf_keys = Vec::new();
    let mut n_selected = Vec::new();
    for _ in 0..ITERS {
        let out = session.step().unwrap();
        queries.push(out.query);
        lf_keys.push(out.lf.as_ref().map(|lf| format!("{:?}", lf.key())));
        n_selected.push(out.n_selected);
    }
    assert_golden_trajectory(&queries, &lf_keys, &n_selected);
    assert_eq!(session.selected(), GOLDEN_SELECTED);
    let report = session.evaluate_downstream().unwrap();
    assert_eq!(
        report.test_accuracy.to_bits(),
        GOLDEN_TEST_ACCURACY.to_bits()
    );
}

#[test]
fn facade_and_engine_agree_step_for_step() {
    let (data, cfg) = fixture();
    let mut session = ActiveDpSession::new(data.clone(), cfg.clone()).unwrap();
    let mut engine = Engine::builder(data).config(cfg).build().unwrap();
    for it in 0..ITERS {
        let s = session.step().unwrap();
        let e = engine.step().unwrap();
        assert_eq!(s.query, e.query, "iteration {it}");
        assert_eq!(
            s.lf.as_ref().map(|l| l.key()),
            e.lf.as_ref().map(|l| l.key()),
            "iteration {it}"
        );
        assert_eq!(s.n_selected, e.n_selected, "iteration {it}");
    }
    let (rs, re) = (
        session.evaluate_downstream().unwrap(),
        engine.evaluate_downstream().unwrap(),
    );
    assert_eq!(rs.test_accuracy.to_bits(), re.test_accuracy.to_bits());
    assert_eq!(rs.label_coverage.to_bits(), re.label_coverage.to_bits());
}

/// `step_batch(1)` must be the identity batching: same query sequence,
/// same LF picks, same LabelPick trajectory, bitwise-identical final
/// metrics as the `step()` loop that produced the golden fixture.
#[test]
fn step_batch_of_one_matches_golden_trajectory() {
    let (data, cfg) = fixture();
    let mut engine = Engine::builder(data).config(cfg).build().unwrap();
    let mut queries = Vec::new();
    let mut lf_keys = Vec::new();
    let mut n_selected = Vec::new();
    for _ in 0..ITERS {
        let batch = engine.step_batch(1).unwrap();
        assert_eq!(batch.len(), 1);
        let out = &batch[0];
        queries.push(out.query);
        lf_keys.push(out.lf.as_ref().map(|lf| format!("{:?}", lf.key())));
        n_selected.push(out.n_selected);
    }
    assert_golden_trajectory(&queries, &lf_keys, &n_selected);
    assert_eq!(engine.state().selected, GOLDEN_SELECTED);
    let report = engine.evaluate_downstream().unwrap();
    assert_eq!(
        report.test_accuracy.to_bits(),
        GOLDEN_TEST_ACCURACY.to_bits()
    );
    assert_eq!(
        report.label_coverage.to_bits(),
        GOLDEN_LABEL_COVERAGE.to_bits()
    );
    let tau = report.threshold.expect("ConFusion enabled");
    assert_eq!(tau.to_bits(), GOLDEN_THRESHOLD.to_bits());
}

/// Larger batches trade refit freshness for throughput: the query
/// *sequence drawn between refits* changes, but determinism is preserved —
/// the same batch size reproduces the same trajectory.
#[test]
fn step_batch_is_deterministic_for_any_k() {
    let run = |k: usize| {
        let (data, cfg) = fixture();
        let mut engine = Engine::builder(data).config(cfg).build().unwrap();
        let mut queries = Vec::new();
        while engine.state().iteration < ITERS {
            for o in engine.step_batch(k).unwrap() {
                queries.push(o.query);
            }
        }
        let report = engine.evaluate_downstream().unwrap();
        (queries, report.test_accuracy.to_bits())
    };
    assert_eq!(run(5), run(5));
    assert_eq!(run(3), run(3));
}

/// Schedule parity, part 1: `run_schedule` under the default `FixedStep`
/// schedule is the golden `step()` loop — same queries, same LF picks,
/// same LabelPick trajectory, bitwise-identical final metrics.
#[test]
fn run_schedule_fixed_step_matches_golden_trajectory() {
    let (data, cfg) = fixture();
    let mut engine = Engine::builder(data)
        .config(cfg)
        .budget(ITERS)
        .build()
        .unwrap();
    assert_eq!(
        *engine.schedule(),
        activedp_repro::core::BudgetSchedule::FixedStep
    );
    let outcomes = engine.run_schedule().unwrap();
    assert_eq!(outcomes.len(), ITERS);
    let queries: Vec<_> = outcomes.iter().map(|o| o.query).collect();
    let lf_keys: Vec<_> = outcomes
        .iter()
        .map(|o| o.lf.as_ref().map(|lf| format!("{:?}", lf.key())))
        .collect();
    let n_selected: Vec<_> = outcomes.iter().map(|o| o.n_selected).collect();
    assert_golden_trajectory(&queries, &lf_keys, &n_selected);
    assert_eq!(engine.state().selected, GOLDEN_SELECTED);
    let report = engine.evaluate_downstream().unwrap();
    assert_eq!(
        report.test_accuracy.to_bits(),
        GOLDEN_TEST_ACCURACY.to_bits()
    );
    assert_eq!(
        report.label_coverage.to_bits(),
        GOLDEN_LABEL_COVERAGE.to_bits()
    );
    let tau = report.threshold.expect("ConFusion enabled");
    assert_eq!(tau.to_bits(), GOLDEN_THRESHOLD.to_bits());
    // The budget is respected exactly: a second call is a no-op.
    assert!(engine.run_schedule().unwrap().is_empty());
    assert_eq!(engine.state().iteration, ITERS);
}

/// Schedule parity, part 2: `FixedBatch{k: 1}` is `FixedStep` — identical
/// outcome stream and bitwise-identical post-run snapshots (which pin the
/// probability caches and both RNG streams, not just the metrics).
#[test]
fn run_schedule_fixed_batch_one_equals_fixed_step() {
    use activedp_repro::core::BudgetSchedule;
    let run = |schedule: BudgetSchedule| {
        let (data, cfg) = fixture();
        let mut engine = Engine::builder(data)
            .config(cfg)
            .schedule(schedule)
            .budget(ITERS)
            .build()
            .unwrap();
        let outcomes = engine.run_schedule().unwrap();
        let fingerprint: Vec<_> = outcomes
            .iter()
            .map(|o| (o.iteration, o.query, o.n_lfs, o.n_selected))
            .collect();
        let mut snapshot = engine.snapshot().unwrap();
        // The schedule is (rightly) part of the spec the snapshot embeds;
        // normalise it so the comparison pins the *run state* alone.
        snapshot.spec.schedule = BudgetSchedule::FixedStep;
        (fingerprint, snapshot.to_bytes())
    };
    assert_eq!(
        run(BudgetSchedule::FixedStep),
        run(BudgetSchedule::FixedBatch { k: 1 })
    );
}

/// The owned engine is `Send + 'static` — the property the SessionHub and
/// any registry/thread-pool deployment rely on. Compile-time check.
#[test]
fn engine_is_send_and_static() {
    fn assert_send<T: Send + 'static>() {}
    assert_send::<Engine>();
    assert_send::<ActiveDpSession>();
}

/// The durable-session acceptance bar: `run k steps → snapshot → restore
/// in a fresh engine → run the remaining steps` must reproduce the golden
/// trajectory and the uninterrupted engine's final state **bitwise** — for
/// every split point of the trajectory, with the snapshot pushed through
/// its byte encoding (what a spill file or the network front end carries),
/// under both serial and parallel execution.
fn assert_snapshot_resume_matches_golden(parallel: bool) {
    for split in [0usize, 1, 8, ITERS - 1, ITERS] {
        let (data, cfg) = fixture();
        let mut first = Engine::builder(data.clone())
            .config(cfg.clone())
            .parallel(parallel)
            .build()
            .unwrap();
        let mut queries = Vec::new();
        let mut lf_keys = Vec::new();
        let mut n_selected = Vec::new();
        let mut record = |out: &activedp_repro::core::StepOutcome| {
            queries.push(out.query);
            lf_keys.push(out.lf.as_ref().map(|lf| format!("{:?}", lf.key())));
            n_selected.push(out.n_selected);
        };
        for _ in 0..split {
            let out = first.step().unwrap();
            record(&out);
        }

        // Snapshot, roundtrip through the byte codec ("fresh process"), and
        // resume on a fresh engine over a regenerated dataset.
        let snap = first.snapshot().unwrap();
        let bytes = snap.to_bytes();
        drop(first);
        let restored = activedp_repro::core::SessionSnapshot::from_bytes(&bytes).unwrap();
        let fresh_data = generate(DatasetId::Youtube, Scale::Tiny, 7)
            .unwrap()
            .into_shared();
        let mut second = Engine::builder(fresh_data).resume(restored).unwrap();
        assert_eq!(second.state().iteration, split, "resume split={split}");
        for _ in split..ITERS {
            let out = second.step().unwrap();
            record(&out);
        }

        assert_golden_trajectory(&queries, &lf_keys, &n_selected);
        assert_eq!(second.state().selected, GOLDEN_SELECTED, "split={split}");
        let report = second.evaluate_downstream().unwrap();
        assert_eq!(
            report.test_accuracy.to_bits(),
            GOLDEN_TEST_ACCURACY.to_bits(),
            "split={split}: accuracy {} != golden",
            report.test_accuracy
        );
        assert_eq!(
            report.label_coverage.to_bits(),
            GOLDEN_LABEL_COVERAGE.to_bits(),
            "split={split}"
        );
        let tau = report.threshold.expect("ConFusion enabled");
        assert_eq!(tau.to_bits(), GOLDEN_THRESHOLD.to_bits(), "split={split}");

        // Beyond the golden metrics: the resumed engine's *entire* state —
        // matrices, probability caches, RNG streams — matches a run that
        // never stopped, so a second snapshot taken now is byte-identical.
        let (data, cfg) = fixture();
        let mut uninterrupted = Engine::builder(data)
            .config(cfg)
            .parallel(parallel)
            .build()
            .unwrap();
        uninterrupted.run(ITERS).unwrap();
        assert_eq!(
            second.snapshot().unwrap().to_bytes(),
            uninterrupted.snapshot().unwrap().to_bytes(),
            "split={split}: post-resume snapshots diverge"
        );
    }
}

#[test]
fn snapshot_resume_matches_golden_trajectory_parallel() {
    assert_snapshot_resume_matches_golden(true);
}

#[test]
fn snapshot_resume_matches_golden_trajectory_serial() {
    assert_snapshot_resume_matches_golden(false);
}

/// A serial-execution snapshot resumed under parallel execution (and vice
/// versa) still reproduces the golden run: execution policy is scheduling
/// only, so it is legitimate for a snapshot to migrate between a laptop
/// and a many-core server.
#[test]
fn snapshot_migrates_across_execution_policies() {
    let run = |first_parallel: bool, second_parallel: bool| {
        let (data, cfg) = fixture();
        let mut e = Engine::builder(data)
            .config(cfg)
            .parallel(first_parallel)
            .build()
            .unwrap();
        e.run(7).unwrap();
        let mut snap = e.snapshot().unwrap();
        snap.spec.session.parallel = second_parallel;
        let fresh = generate(DatasetId::Youtube, Scale::Tiny, 7)
            .unwrap()
            .into_shared();
        let mut resumed = Engine::builder(fresh).resume(snap).unwrap();
        while resumed.state().iteration < ITERS {
            resumed.step().unwrap();
        }
        let report = resumed.evaluate_downstream().unwrap();
        report.test_accuracy.to_bits()
    };
    assert_eq!(run(true, false), GOLDEN_TEST_ACCURACY.to_bits());
    assert_eq!(run(false, true), GOLDEN_TEST_ACCURACY.to_bits());
}

/// Snapshotting is read-only: taking one mid-run must not perturb the
/// trajectory that continues in the same engine.
#[test]
fn snapshot_is_side_effect_free() {
    let (data, cfg) = fixture();
    let mut engine = Engine::builder(data).config(cfg).build().unwrap();
    let mut queries = Vec::new();
    let mut lf_keys = Vec::new();
    let mut n_selected = Vec::new();
    for _ in 0..ITERS {
        let _ = engine.snapshot().unwrap();
        let out = engine.step().unwrap();
        queries.push(out.query);
        lf_keys.push(out.lf.as_ref().map(|lf| format!("{:?}", lf.key())));
        n_selected.push(out.n_selected);
    }
    assert_golden_trajectory(&queries, &lf_keys, &n_selected);
    let report = engine.evaluate_downstream().unwrap();
    assert_eq!(
        report.test_accuracy.to_bits(),
        GOLDEN_TEST_ACCURACY.to_bits()
    );
}
