//! Integration tests for the paper's comparative studies: Table 3 ablation
//! switches, Table 4 sampler choices, Table 5 label noise.

use activedp_repro::core::{ActiveDpSession, SamplerChoice, SessionConfig};
use activedp_repro::data::{generate, DatasetId, Scale, SharedDataset};

fn auc(data: &SharedDataset, cfg: SessionConfig, iters: usize) -> f64 {
    let mut session = ActiveDpSession::new(data.clone(), cfg).expect("session builds");
    let mut points = Vec::new();
    for it in 1..=iters {
        session.step().expect("step succeeds");
        if it % 10 == 0 {
            points.push(
                session
                    .evaluate_downstream()
                    .expect("evaluation succeeds")
                    .test_accuracy,
            );
        }
    }
    points.iter().sum::<f64>() / points.len() as f64
}

#[test]
fn all_four_ablation_variants_run() {
    let data = generate(DatasetId::Youtube, Scale::Tiny, 50)
        .expect("dataset generates")
        .into_shared();
    for (lp, cf) in [(false, false), (true, false), (false, true), (true, true)] {
        let cfg = SessionConfig {
            use_labelpick: lp,
            use_confusion: cf,
            ..SessionConfig::paper_defaults(true, 50)
        };
        let a = auc(&data, cfg, 20);
        assert!(a > 0.4, "LP={lp} CF={cf}: auc {a}");
    }
}

#[test]
fn confusion_lifts_tabular_performance() {
    // The paper's strongest ablation effect: ConFusion on Occupancy
    // (Table 3: 0.8881 -> 0.9906). Verify the direction on average.
    let mut with = 0.0;
    let mut without = 0.0;
    for seed in 51..54 {
        let data = generate(DatasetId::Occupancy, Scale::Tiny, seed)
            .expect("dataset generates")
            .into_shared();
        without += auc(&data, SessionConfig::ablation_baseline(false, seed), 30);
        with += auc(
            &data,
            SessionConfig {
                use_labelpick: false,
                ..SessionConfig::paper_defaults(false, seed)
            },
            30,
        );
    }
    assert!(
        with > without - 0.01,
        "ConFusion should not hurt Occupancy: with {with:.3} without {without:.3}"
    );
}

#[test]
fn every_sampler_choice_completes() {
    let data = generate(DatasetId::Imdb, Scale::Tiny, 55)
        .expect("dataset generates")
        .into_shared();
    for sampler in [
        SamplerChoice::Adp,
        SamplerChoice::Passive,
        SamplerChoice::Uncertainty,
        SamplerChoice::Lal,
        SamplerChoice::Seu,
    ] {
        let cfg = SessionConfig {
            sampler,
            ..SessionConfig::paper_defaults(true, 55)
        };
        let a = auc(&data, cfg, 20);
        assert!(a > 0.35, "{}: auc {a}", sampler.label());
    }
}

#[test]
fn label_noise_degrades_gracefully() {
    // Table 5's qualitative claim: noise hurts, but moderately.
    let mut label_acc = [0.0f64; 2];
    for seed in 56..59 {
        let data = generate(DatasetId::Youtube, Scale::Tiny, seed)
            .expect("dataset generates")
            .into_shared();
        for (k, noise) in [0.0, 0.3].iter().enumerate() {
            let cfg = SessionConfig {
                noise_rate: *noise,
                ..SessionConfig::paper_defaults(true, seed)
            };
            let mut session = ActiveDpSession::new(data.clone(), cfg).expect("session builds");
            session.run(30).expect("session runs");
            label_acc[k] += session
                .evaluate_downstream()
                .expect("evaluation succeeds")
                .label_accuracy
                .unwrap_or(0.5);
        }
    }
    assert!(
        label_acc[0] > label_acc[1],
        "clean labels {:.3} should beat noisy {:.3}",
        label_acc[0],
        label_acc[1]
    );
}

#[test]
fn noisy_user_still_returns_accurate_lfs_globally() {
    // Table 5's setup detail: flipped-label LFs misfire on their query but
    // keep train-set accuracy above the threshold.
    use activedp_repro::lf::{CandidateSpace, SimulatedUser, UserConfig};
    let data = generate(DatasetId::Youtube, Scale::Tiny, 60).expect("dataset generates");
    let space = CandidateSpace::build(&data.train);
    let mut user = SimulatedUser::new(
        UserConfig {
            acc_threshold: 0.6,
            noise_rate: 1.0,
        },
        60,
    );
    let mut checked = 0;
    for idx in 0..data.train.len() {
        if let Some(lf) = user.respond(&space, &data.train, &data.train, idx) {
            let acc = lf.accuracy(&data.train).expect("candidate LFs fire");
            assert!(acc > 0.6, "noisy LF with train accuracy {acc}");
            // And it misfires on its own query instance.
            assert_ne!(lf.apply(&data.train, idx) as usize, data.train.labels[idx]);
            checked += 1;
            if checked >= 10 {
                break;
            }
        }
    }
    assert!(checked > 0, "no noisy candidates found at all");
}
