//! The WAL's parity bar: a snapshot at commit point `j` plus the logged
//! events `j+1 ..= k` must reconstruct the engine an uninterrupted run
//! reaches at `k` — **bitwise**, post-replay snapshot bytes included — for
//! every `(j, k)` split, in both serial and parallel execution. This is
//! the contract `Engine::replay_to` documents and everything above it
//! (journal recovery, `SessionHub::recover`, the crash-recovery CI leg)
//! leans on.

use activedp_repro::core::{
    Engine, SessionConfig, SessionSnapshot, StepEvent, StepObserver, StepOutcome,
};
use activedp_repro::data::{generate, DatasetId, Scale, SharedDataset};
use std::sync::mpsc;

const ITERS: usize = 15;

struct Tap(mpsc::Sender<StepEvent>);

impl StepObserver for Tap {
    fn on_step(&mut self, _outcome: &StepOutcome) {}
    fn wants_events(&self) -> bool {
        true
    }
    fn on_event(&mut self, event: &StepEvent) {
        let _ = self.0.send(event.clone());
    }
}

fn config(parallel: bool) -> SessionConfig {
    SessionConfig {
        parallel,
        ..SessionConfig::paper_defaults(true, 7)
    }
}

/// One uninterrupted golden run: the shared split, a snapshot after every
/// iteration (index = iteration, 0 included), and the full event stream.
fn golden(parallel: bool) -> (SharedDataset, Vec<SessionSnapshot>, Vec<StepEvent>) {
    let data = generate(DatasetId::Youtube, Scale::Tiny, 7)
        .expect("dataset generates")
        .into_shared();
    let mut engine = Engine::builder(data.clone())
        .config(config(parallel))
        .build()
        .expect("engine builds");
    let (tx, rx) = mpsc::channel();
    engine.add_observer(Tap(tx));
    let mut snapshots = vec![engine.snapshot().expect("snapshot captures")];
    for _ in 0..ITERS {
        engine.step().expect("golden trajectory");
        snapshots.push(engine.snapshot().expect("snapshot captures"));
    }
    drop(engine);
    let events: Vec<StepEvent> = rx.try_iter().collect();
    assert_eq!(events.len(), ITERS);
    (data, snapshots, events)
}

#[test]
fn replay_matches_the_uninterrupted_run_bitwise() {
    for parallel in [false, true] {
        let (data, snapshots, events) = golden(parallel);
        let golden_bytes: Vec<Vec<u8>> = snapshots.iter().map(|s| s.to_bytes()).collect();
        for j in [0usize, 1, 8, ITERS - 1, ITERS] {
            for k in [j, (j + ITERS).div_ceil(2), ITERS] {
                let replayed = Engine::replay_to_over(&snapshots[j], &events, k, data.clone())
                    .unwrap_or_else(|e| panic!("replay {j}->{k} (parallel={parallel}): {e}"));
                assert_eq!(
                    replayed.snapshot().unwrap().to_bytes(),
                    golden_bytes[k],
                    "snapshot after replay {j}->{k} (parallel={parallel}) diverged"
                );
            }
        }
    }
}

#[test]
fn a_replayed_engine_steps_on_exactly_like_the_original() {
    // Replaying is not just a frozen-state trick: the reconstructed engine
    // must *continue* the trajectory bit for bit — RNG streams, model
    // caches and all — to the end of the run.
    for parallel in [false, true] {
        let (data, snapshots, events) = golden(parallel);
        let mut replayed = Engine::replay_to_over(&snapshots[8], &events, 12, data).unwrap();
        for _ in 12..ITERS {
            replayed.step().unwrap();
        }
        assert_eq!(
            replayed.snapshot().unwrap().to_bytes(),
            snapshots[ITERS].to_bytes(),
            "post-replay stepping (parallel={parallel}) diverged from the original run"
        );
    }
}
