//! Golden-bytes pin of the on-disk write-ahead-log format.
//!
//! `tests/fixtures/wal_v2.bin` is a committed encoding of a fixed
//! journal: session 7 over Youtube · Tiny · dataset seed 7 · session
//! seed 7 with a **routed noisy oracle and a label shift at iteration 4**,
//! journalled from iteration 0 through 6 single steps (6 commit points,
//! all in the open segment — the default cap is far larger). The fixture
//! concatenates the two files a fresh journal writes,
//! `[u32 manifest_len | manifest.adpwman | open.adpwal]`, so it pins the
//! manifest format (embedding a current-version scenario), the
//! length/payload/CRC record framing, and the per-event route tag that
//! keeps replays of routed sessions bitwise.
//!
//! `tests/fixtures/wal_v1.bin` is the previous format — plain simulated
//! session, events without the route tag, manifest embedding a v2
//! scenario — and pins the back-compat path: old journals must keep
//! opening and replaying. It is never regenerated — old bytes don't
//! change.
//!
//! Today's writer must reproduce the current bytes **exactly**: the event
//! stream, the codec and the CRC are all deterministic and
//! platform-independent, so any diff is a format or behaviour change and
//! must come with a deliberate version bump plus a regenerated fixture —
//! never as an accident.
//!
//! Regenerate after an intentional bump with:
//! `ADP_REGEN_FIXTURES=1 cargo test --test wal_golden`.

use activedp_repro::core::{
    Engine, OracleKind, ScenarioSpec, SessionConfig, StepEvent, StepObserver, StepOutcome,
};
use activedp_repro::data::{DatasetId, DatasetSpec, DriftSpec, Scale};
use activedp_repro::wal::Journal;
use std::path::{Path, PathBuf};
use std::sync::mpsc;

const FIXTURE: &str = "tests/fixtures/wal_v2.bin";

/// The previous-format journal (simulated session, pre-route events).
/// Never regenerated — old bytes don't change.
const FIXTURE_V1: &str = "tests/fixtures/wal_v1.bin";

const STEPS: usize = 6;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE)
}

fn unique_tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "adp-wal-golden-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The current fixture scenario: routed noisy oracle, label shift at 4.
fn fixture_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(DatasetSpec {
        id: DatasetId::Youtube,
        scale: Scale::Tiny,
        seed: 7,
    });
    spec.session = SessionConfig::paper_defaults(true, 7);
    spec.session.oracle = "noisy:0.8>1@uncertainty:0.3".parse().expect("grammar");
    spec.drift = DriftSpec::LabelShift { at: 4, prior: 0.8 };
    spec.budget = 12;
    spec
}

struct Tap(mpsc::Sender<StepEvent>);

impl StepObserver for Tap {
    fn on_step(&mut self, _outcome: &StepOutcome) {}
    fn wants_events(&self) -> bool {
        true
    }
    fn on_event(&mut self, event: &StepEvent) {
        let _ = self.0.send(event.clone());
    }
}

/// Runs the fixture trajectory with a journal attached and returns the raw
/// bytes of the two files it wrote, fixture-framed.
fn write_fixture_journal(dir: &Path) -> Vec<u8> {
    let spec = fixture_spec();
    let data = spec
        .dataset
        .generate()
        .expect("dataset generates")
        .into_shared();
    let mut journal = Journal::create(dir, 7, spec.clone(), 0).expect("journal creates");
    let mut engine = Engine::from_spec_over(spec, data).expect("engine builds");
    let (tx, rx) = mpsc::channel();
    engine.add_observer(Tap(tx));
    for _ in 0..STEPS {
        engine.step().expect("fixture trajectory");
    }
    drop(engine);
    for event in rx.try_iter() {
        journal.append(&event).expect("journal appends");
    }
    let manifest = std::fs::read(dir.join("manifest.adpwman")).expect("manifest exists");
    let open = std::fs::read(dir.join("open.adpwal")).expect("open segment exists");
    let mut bytes = Vec::with_capacity(4 + manifest.len() + open.len());
    bytes.extend_from_slice(&(manifest.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&manifest);
    bytes.extend_from_slice(&open);
    bytes
}

/// Splits fixture framing back into journal files under `dir`.
fn unpack_fixture(golden: &[u8], dir: &Path) {
    let manifest_len = u32::from_le_bytes(golden[..4].try_into().unwrap()) as usize;
    let (manifest, open) = golden[4..].split_at(manifest_len);
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join("manifest.adpwman"), manifest).unwrap();
    std::fs::write(dir.join("open.adpwal"), open).unwrap();
}

/// Opens `dir`, replays its events from the spec-synthesised iteration-0
/// base, and asserts the result is bitwise the uninterrupted run.
fn assert_replays_bitwise(dir: &Path) {
    let journal = Journal::open(dir).expect("fixture journal opens");
    assert_eq!(journal.session(), 7);
    assert_eq!(journal.checkpoint_iteration(), 0);
    assert_eq!(journal.durable_iteration(), STEPS);
    let events = journal.events().expect("events decode");
    assert_eq!(events.len(), STEPS);
    assert!(events.iter().all(|e| e.commit));

    let spec = journal.spec().clone();
    let data = spec.dataset.generate().unwrap().into_shared();
    let base = Engine::from_spec_over(spec.clone(), data.clone())
        .unwrap()
        .snapshot()
        .unwrap();
    let replayed = Engine::replay_to_over(&base, &events, STEPS, data.clone()).unwrap();
    let mut straight = Engine::from_spec_over(spec, data).unwrap();
    straight.run(STEPS).unwrap();
    assert_eq!(
        replayed.snapshot().unwrap().to_bytes(),
        straight.snapshot().unwrap().to_bytes(),
        "fixture replay diverged from the uninterrupted run"
    );
}

#[test]
fn journal_reproduces_the_committed_fixture_byte_for_byte() {
    let dir = unique_tempdir("write");
    let bytes = write_fixture_journal(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    if std::env::var_os("ADP_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
        std::fs::write(fixture_path(), &bytes).unwrap();
        panic!(
            "fixture regenerated at {} — commit it and re-run without ADP_REGEN_FIXTURES",
            fixture_path().display()
        );
    }
    let golden = std::fs::read(fixture_path())
        .expect("fixture file exists (regenerate with ADP_REGEN_FIXTURES=1)");
    assert_eq!(
        bytes.len(),
        golden.len(),
        "encoded length changed — WAL format drift without a version bump?"
    );
    let first_diff = bytes.iter().zip(&golden).position(|(a, b)| a != b);
    assert_eq!(
        first_diff, None,
        "journal bytes diverge from the committed fixture at offset {first_diff:?} — \
         bump the WAL format version and regenerate deliberately"
    );
}

#[test]
fn committed_fixture_still_opens_and_replays() {
    // The committed bytes are a *live* artefact: splitting them back into
    // the two journal files must open, report the right coordinates, and
    // replay onto the exact state an uninterrupted run reaches — route
    // tags included (the cheap oracle's RNG replays from the journal).
    let golden = std::fs::read(fixture_path()).expect("fixture file exists");
    let dir = unique_tempdir("open");
    unpack_fixture(&golden, &dir);
    let journal = Journal::open(&dir).expect("fixture journal opens");
    assert!(matches!(
        journal.spec().session.oracle,
        OracleKind::Noisy { .. }
    ));
    assert_eq!(
        journal.spec().drift,
        DriftSpec::LabelShift { at: 4, prior: 0.8 }
    );
    drop(journal);
    assert_replays_bitwise(&dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn previous_format_journals_still_open_and_replay() {
    // The committed v1 bytes predate the route tag and embed a v2-era
    // scenario in the manifest; both must keep decoding — the spec with
    // the simulated-oracle defaults, the events with no route — and the
    // replay must still land bitwise on the uninterrupted run.
    let golden = std::fs::read(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE_V1))
        .expect("committed v1 fixture exists");
    let dir = unique_tempdir("v1");
    unpack_fixture(&golden, &dir);
    let journal = Journal::open(&dir).expect("v1 journal opens");
    assert_eq!(journal.spec().session.oracle, OracleKind::Simulated);
    assert_eq!(journal.spec().drift, DriftSpec::None);
    let events = journal.events().expect("v1 events decode");
    assert!(events.iter().all(|e| e.route.is_none()));
    drop(journal);
    assert_replays_bitwise(&dir);
    let _ = std::fs::remove_dir_all(&dir);
}
