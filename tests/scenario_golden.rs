//! Golden-bytes pin of the scenario wire format.
//!
//! `tests/fixtures/scenario_v3.bin` is a committed encoding of a fixed,
//! fully non-default [`ScenarioSpec`] (Census · custom scale · QBC ·
//! Dawid-Skene · phased schedule · ANN candidate strategy · routed noisy
//! oracle · covariate drift). Today's encoder must reproduce it **byte
//! for byte** — the codec is deterministic and platform-independent — so
//! any diff is a format change and must come with a deliberate
//! `SCENARIO_VERSION` bump plus a regenerated fixture, never as an
//! accident. The spec is the serving protocol's and the snapshot format's
//! shared vocabulary: silently re-encoding it would orphan every spill
//! file and every stored sweep description at once.
//!
//! `tests/fixtures/scenario_v2.bin` (no oracle/drift fields) and
//! `tests/fixtures/scenario_v1.bin` (no candidate-strategy field either)
//! are the same spec in the previous formats and pin the back-compat
//! decode paths: old bytes must keep decoding, with each missing field at
//! the default every old run effectively used (`Exact` candidates,
//! `Simulated` oracle, no drift). They are never regenerated — old bytes
//! don't change.
//!
//! Regenerate the current fixture after an intentional bump with:
//! `ADP_REGEN_FIXTURES=1 cargo test --test scenario_golden`.
//!
//! [`ScenarioSpec`]: activedp_repro::core::ScenarioSpec

use activedp_repro::core::{
    BudgetSchedule, CandidateStrategy, ConfusionSpec, LabelModelKind, LatencyModel, OracleKind,
    PhaseSegment, RoutePolicy, SamplerChoice, ScenarioSpec, SCENARIO_VERSION,
};
use activedp_repro::data::{DatasetId, DatasetSpec, DriftSpec, Scale};
use std::path::PathBuf;

const FIXTURE: &str = "tests/fixtures/scenario_v3.bin";

/// The spec in the v2 format (no oracle/drift), committed when
/// `SCENARIO_VERSION` was 2. Never regenerated — old bytes don't change.
const FIXTURE_V2: &str = "tests/fixtures/scenario_v2.bin";

/// The spec in the v1 format (no candidate strategy either), committed
/// when `SCENARIO_VERSION` was 1.
const FIXTURE_V1: &str = "tests/fixtures/scenario_v1.bin";

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE)
}

/// A spec exercising the non-default corners: tabular dataset, custom
/// scale, QBC + Dawid-Skene, ablations off, noise on, serial execution,
/// phased schedule, ANN candidate strategy, a fully non-default routed
/// oracle and a covariate drift at a phase-2 batch boundary.
fn fixture_spec() -> ScenarioSpec {
    let mut spec = v2_fixture_spec();
    spec.session.oracle = OracleKind::Noisy {
        confusion: ConfusionSpec::Biased {
            accuracy: 0.75,
            bias: 1,
        },
        latency: LatencyModel {
            cheap_cost: 0.5,
            expensive_cost: 24.0,
        },
        policy: RoutePolicy::UncertaintyThreshold { tau: 0.3 },
    };
    spec.drift = DriftSpec::CovariateDrift {
        at: 26,
        rotation: 0.35,
    };
    spec
}

/// What the committed v2 fixture described — everything above except the
/// oracle and drift fields, which v2 could not express.
fn v2_fixture_spec() -> ScenarioSpec {
    let mut spec = v1_fixture_spec();
    spec.session.candidates = CandidateStrategy::Ann {
        nprobe: 8,
        refresh_every: 2,
    };
    spec
}

/// What the committed v1 fixture described — no candidate strategy, no
/// oracle, no drift.
fn v1_fixture_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(DatasetSpec {
        id: DatasetId::Census,
        scale: Scale::Custom(0.125),
        seed: 42,
    });
    spec.session.seed = 9;
    spec.session.sampler = SamplerChoice::Qbc;
    spec.session.label_model = LabelModelKind::DawidSkene;
    spec.session.use_labelpick = false;
    spec.session.use_confusion = false;
    spec.session.noise_rate = 0.1;
    spec.session.parallel = false;
    spec.schedule = BudgetSchedule::Phased {
        segments: vec![
            PhaseSegment { k: 1, batches: 10 },
            PhaseSegment { k: 16, batches: 4 },
        ],
    };
    spec.budget = 200;
    spec
}

#[test]
fn encoder_reproduces_the_committed_fixture_byte_for_byte() {
    let bytes = fixture_spec().to_bytes();
    if std::env::var_os("ADP_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
        std::fs::write(fixture_path(), &bytes).unwrap();
        panic!(
            "fixture regenerated at {} — commit it and re-run without ADP_REGEN_FIXTURES",
            fixture_path().display()
        );
    }
    let golden = std::fs::read(fixture_path())
        .expect("fixture file exists (regenerate with ADP_REGEN_FIXTURES=1)");
    assert_eq!(
        bytes.len(),
        golden.len(),
        "encoded length changed — scenario format drift without a version bump?"
    );
    let first_diff = bytes.iter().zip(&golden).position(|(a, b)| a != b);
    assert_eq!(
        first_diff, None,
        "encoded bytes diverge from the committed fixture at offset {first_diff:?} — \
         bump SCENARIO_VERSION and regenerate deliberately"
    );
}

#[test]
fn committed_fixture_still_decodes_and_validates() {
    let golden = std::fs::read(fixture_path()).expect("fixture file exists");
    let spec = ScenarioSpec::from_bytes(&golden).expect("fixture decodes");
    assert_eq!(spec, fixture_spec());
    spec.validate().expect("fixture spec is valid");
}

#[test]
fn v2_format_bytes_still_decode_with_simulated_oracle_and_no_drift() {
    // The committed v2 bytes predate the oracle and drift fields; they
    // must keep decoding with both at their defaults — exactly the
    // scenario every v2 spec ran.
    let old = std::fs::read(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE_V2))
        .expect("committed v2 fixture exists");
    let spec = ScenarioSpec::from_bytes(&old).expect("v2 decodes");
    assert_eq!(spec, v2_fixture_spec());
    assert_eq!(spec.session.oracle, OracleKind::Simulated);
    assert_eq!(spec.drift, DriftSpec::None);
    spec.validate().expect("v2 fixture spec is valid");
}

#[test]
fn v1_format_bytes_still_decode_with_exact_candidates() {
    // The committed v1 bytes predate the candidate-strategy field too.
    let old = std::fs::read(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE_V1))
        .expect("committed v1 fixture exists");
    let spec = ScenarioSpec::from_bytes(&old).expect("v1 decodes");
    assert_eq!(spec, v1_fixture_spec());
    assert_eq!(spec.session.candidates, CandidateStrategy::Exact);
    assert_eq!(spec.session.oracle, OracleKind::Simulated);
    assert_eq!(spec.drift, DriftSpec::None);
    spec.validate().expect("v1 fixture spec is valid");
}

#[test]
fn unknown_versions_are_rejected_with_a_typed_error_not_a_panic() {
    let mut future = fixture_spec().to_bytes();
    let next = SCENARIO_VERSION + 1;
    future[8..12].copy_from_slice(&next.to_le_bytes());
    let err = ScenarioSpec::from_bytes(&future).unwrap_err();
    match err {
        activedp_repro::core::ActiveDpError::SnapshotCodec(
            activedp_repro::wire::WireError::UnknownVersion { found, supported },
        ) => {
            assert_eq!(found, next);
            assert_eq!(supported, SCENARIO_VERSION);
        }
        other => panic!("expected UnknownVersion, got {other:?}"),
    }
}
