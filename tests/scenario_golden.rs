//! Golden-bytes pin of the scenario wire format.
//!
//! `tests/fixtures/scenario_v2.bin` is a committed encoding of a fixed,
//! fully non-default [`ScenarioSpec`] (Census · custom scale · QBC ·
//! Dawid-Skene · phased schedule · ANN candidate strategy). Today's
//! encoder must reproduce it **byte for byte** — the codec is
//! deterministic and platform-independent — so any diff is a format
//! change and must come with a deliberate `SCENARIO_VERSION` bump plus a
//! regenerated fixture, never as an accident. The spec is the serving
//! protocol's and the snapshot format's shared vocabulary: silently
//! re-encoding it would orphan every spill file and every stored sweep
//! description at once.
//!
//! `tests/fixtures/scenario_v1.bin` is the same spec in the previous
//! format (no candidate-strategy field) and pins the back-compat decode
//! path: v1 bytes must keep decoding, with the strategy defaulting to
//! `Exact`.
//!
//! Regenerate the current fixture after an intentional bump with:
//! `ADP_REGEN_FIXTURES=1 cargo test --test scenario_golden`.
//!
//! [`ScenarioSpec`]: activedp_repro::core::ScenarioSpec

use activedp_repro::core::{
    BudgetSchedule, CandidateStrategy, LabelModelKind, PhaseSegment, SamplerChoice, ScenarioSpec,
    SCENARIO_VERSION,
};
use activedp_repro::data::{DatasetId, DatasetSpec, Scale};
use std::path::PathBuf;

const FIXTURE: &str = "tests/fixtures/scenario_v2.bin";

/// The previous-format encoding of the same spec (minus the field that
/// didn't exist), committed when `SCENARIO_VERSION` was 1. Never
/// regenerated — old bytes don't change.
const FIXTURE_V1: &str = "tests/fixtures/scenario_v1.bin";

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE)
}

/// A spec exercising the non-default corners: tabular dataset, custom
/// scale, QBC + Dawid-Skene, ablations off, noise on, serial execution,
/// phased schedule, ANN candidate strategy.
fn fixture_spec() -> ScenarioSpec {
    let mut spec = v1_fixture_spec();
    spec.session.candidates = CandidateStrategy::Ann {
        nprobe: 8,
        refresh_every: 2,
    };
    spec
}

/// What the committed v1 fixture described — everything above except the
/// candidate strategy, which v1 could not express.
fn v1_fixture_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(DatasetSpec {
        id: DatasetId::Census,
        scale: Scale::Custom(0.125),
        seed: 42,
    });
    spec.session.seed = 9;
    spec.session.sampler = SamplerChoice::Qbc;
    spec.session.label_model = LabelModelKind::DawidSkene;
    spec.session.use_labelpick = false;
    spec.session.use_confusion = false;
    spec.session.noise_rate = 0.1;
    spec.session.parallel = false;
    spec.schedule = BudgetSchedule::Phased {
        segments: vec![
            PhaseSegment { k: 1, batches: 10 },
            PhaseSegment { k: 16, batches: 4 },
        ],
    };
    spec.budget = 200;
    spec
}

#[test]
fn encoder_reproduces_the_committed_fixture_byte_for_byte() {
    let bytes = fixture_spec().to_bytes();
    if std::env::var_os("ADP_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
        std::fs::write(fixture_path(), &bytes).unwrap();
        panic!(
            "fixture regenerated at {} — commit it and re-run without ADP_REGEN_FIXTURES",
            fixture_path().display()
        );
    }
    let golden = std::fs::read(fixture_path())
        .expect("fixture file exists (regenerate with ADP_REGEN_FIXTURES=1)");
    assert_eq!(
        bytes.len(),
        golden.len(),
        "encoded length changed — scenario format drift without a version bump?"
    );
    let first_diff = bytes.iter().zip(&golden).position(|(a, b)| a != b);
    assert_eq!(
        first_diff, None,
        "encoded bytes diverge from the committed fixture at offset {first_diff:?} — \
         bump SCENARIO_VERSION and regenerate deliberately"
    );
}

#[test]
fn committed_fixture_still_decodes_and_validates() {
    let golden = std::fs::read(fixture_path()).expect("fixture file exists");
    let spec = ScenarioSpec::from_bytes(&golden).expect("fixture decodes");
    assert_eq!(spec, fixture_spec());
    spec.validate().expect("fixture spec is valid");
}

#[test]
fn previous_format_bytes_still_decode_with_exact_candidates() {
    // The committed v1 bytes predate the candidate-strategy field; they
    // must keep decoding, with the field at its `Exact` default — exactly
    // what every v1 spec ran.
    let old = std::fs::read(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE_V1))
        .expect("committed v1 fixture exists");
    let spec = ScenarioSpec::from_bytes(&old).expect("v1 decodes");
    assert_eq!(spec, v1_fixture_spec());
    assert_eq!(spec.session.candidates, CandidateStrategy::Exact);
    spec.validate().expect("v1 fixture spec is valid");
}

#[test]
fn unknown_versions_are_rejected_with_a_typed_error_not_a_panic() {
    let mut future = fixture_spec().to_bytes();
    let next = SCENARIO_VERSION + 1;
    future[8..12].copy_from_slice(&next.to_le_bytes());
    let err = ScenarioSpec::from_bytes(&future).unwrap_err();
    match err {
        activedp_repro::core::ActiveDpError::SnapshotCodec(
            activedp_repro::wire::WireError::UnknownVersion { found, supported },
        ) => {
            assert_eq!(found, next);
            assert_eq!(supported, SCENARIO_VERSION);
        }
        other => panic!("expected UnknownVersion, got {other:?}"),
    }
}
