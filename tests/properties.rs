//! Property-based tests (proptest) on the core invariants of the stack.

use activedp_repro::core::{aggregate, tune_threshold};
use activedp_repro::labelmodel::{
    DawidSkene, LabelModel, MajorityVote, TripletMetal,
};
use activedp_repro::lf::{LabelMatrix, ABSTAIN};
use activedp_repro::linalg::{
    covariance_matrix, entropy, lasso_quadratic_cd, softmax_inplace, Cholesky, CsrBuilder, Matrix,
};
use proptest::prelude::*;

/// Strategy: a well-formed binary vote matrix (votes in {-1, 0, 1}).
fn vote_matrix(max_n: usize, max_m: usize) -> impl Strategy<Value = Vec<Vec<i8>>> {
    (1..=max_m).prop_flat_map(move |m| {
        proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(-1i8), Just(0i8), Just(1i8)], m),
            1..=max_n,
        )
    })
}

/// Strategy: a probability distribution over two classes.
fn binary_dist() -> impl Strategy<Value = Vec<f64>> {
    (0.0f64..=1.0).prop_map(|p| vec![1.0 - p, p])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn label_models_output_probability_simplexes(rows in vote_matrix(12, 5)) {
        let matrix = LabelMatrix::from_votes(&rows).unwrap();
        let models: Vec<Box<dyn LabelModel>> = vec![
            Box::new(MajorityVote::new(2)),
            Box::new(DawidSkene::new(2)),
            Box::new(TripletMetal::new(2)),
        ];
        for mut model in models {
            model.fit(&matrix, None).unwrap();
            for row in &rows {
                let p = model.predict_proba(row);
                prop_assert_eq!(p.len(), 2);
                prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
                prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn label_matrix_roundtrip(rows in vote_matrix(10, 6)) {
        let m = LabelMatrix::from_votes(&rows).unwrap();
        prop_assert_eq!(m.n_instances(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(m.row(i), row.as_slice());
        }
        // Column selection preserves content.
        let cols: Vec<usize> = (0..m.n_lfs()).rev().collect();
        let sel = m.select_columns(&cols).unwrap();
        for i in 0..m.n_instances() {
            for (k, &c) in cols.iter().enumerate() {
                prop_assert_eq!(sel.get(i, k), m.get(i, c));
            }
        }
    }

    #[test]
    fn confusion_coverage_monotone_in_tau(
        al in proptest::collection::vec(binary_dist(), 1..20),
        lm_seed in 0u64..1000,
    ) {
        let n = al.len();
        let lm: Vec<Vec<f64>> = (0..n).map(|i| {
            let p = ((i as u64 * 7 + lm_seed) % 100) as f64 / 100.0;
            vec![1.0 - p, p]
        }).collect();
        let has_vote: Vec<bool> = (0..n).map(|i| (i as u64 + lm_seed) % 3 != 0).collect();
        let coverage = |tau: f64| {
            aggregate(&al, &lm, &has_vote, tau)
                .iter()
                .filter(|l| l.is_some())
                .count()
        };
        // Raising tau can only shrink the covered set.
        prop_assert!(coverage(0.0) >= coverage(0.55));
        prop_assert!(coverage(0.55) >= coverage(0.8));
        prop_assert!(coverage(0.8) >= coverage(1.01));
    }

    #[test]
    fn tuned_threshold_is_a_valid_confidence(
        al in proptest::collection::vec(binary_dist(), 2..20),
    ) {
        let n = al.len();
        let lm: Vec<Vec<f64>> = al.iter().rev().cloned().collect();
        let has_vote = vec![true; n];
        let truth: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let tau = tune_threshold(&al, &lm, &has_vote, &truth);
        prop_assert!((0.0..=1.0).contains(&tau));
    }

    #[test]
    fn entropy_bounds_hold(p in binary_dist()) {
        let h = entropy(&p);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (2.0f64).ln() + 1e-12);
    }

    #[test]
    fn softmax_produces_distribution(logits in proptest::collection::vec(-30.0f64..30.0, 1..6)) {
        let mut l = logits;
        softmax_inplace(&mut l);
        prop_assert!((l.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(l.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn cholesky_reconstructs_spd_matrices(seed in 0u64..500, dim in 1usize..6) {
        // Build SPD as B Bᵀ + I from a deterministic pseudo-random B.
        let b = Matrix::from_fn(dim, dim, |i, j| {
            (((seed as usize + i * 31 + j * 17) % 13) as f64 - 6.0) / 6.0
        });
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diagonal(1.0).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.factor_l().matmul(&ch.factor_l().transpose()).unwrap();
        for i in 0..dim {
            for j in 0..dim {
                prop_assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn covariance_diagonal_nonnegative(seed in 0u64..500, n in 2usize..12, p in 1usize..5) {
        let data = Matrix::from_fn(n, p, |i, j| {
            (((seed as usize + i * 13 + j * 7) % 23) as f64 - 11.0) * 0.1
        });
        let cov = covariance_matrix(&data).unwrap();
        for j in 0..p {
            prop_assert!(cov[(j, j)] >= -1e-12);
        }
        prop_assert!(cov.is_symmetric(1e-12));
    }

    #[test]
    fn lasso_solution_sparsity_grows_with_penalty(
        s0 in -1.0f64..1.0, s1 in -1.0f64..1.0,
    ) {
        let v = Matrix::identity(2);
        let s = vec![s0, s1];
        let nnz = |rho: f64| {
            let mut beta = vec![0.0; 2];
            lasso_quadratic_cd(&v, &s, rho, &mut beta, Default::default()).unwrap();
            beta.iter().filter(|&&b| b != 0.0).count()
        };
        prop_assert!(nnz(0.01) >= nnz(0.5));
        prop_assert!(nnz(0.5) >= nnz(2.0));
    }

    #[test]
    fn csr_matvec_matches_dense(rows in proptest::collection::vec(
        proptest::collection::vec(-5.0f64..5.0, 3), 1..8,
    )) {
        let mut b = CsrBuilder::new(3);
        for r in &rows {
            b.push_row(r.iter().enumerate().map(|(j, &x)| (j as u32, x)).collect());
        }
        let sparse = b.finish();
        let dense = Matrix::from_rows(&rows).unwrap();
        let v = vec![0.3, -1.5, 2.0];
        let sv = sparse.matvec(&v).unwrap();
        let dv = dense.matvec(&v).unwrap();
        for (a, c) in sv.iter().zip(&dv) {
            prop_assert!((a - c).abs() < 1e-9);
        }
    }

    #[test]
    fn lf_accuracy_and_coverage_in_unit_interval(rows in vote_matrix(15, 4)) {
        let m = LabelMatrix::from_votes(&rows).unwrap();
        let labels: Vec<usize> = (0..m.n_instances()).map(|i| i % 2).collect();
        for j in 0..m.n_lfs() {
            let cov = m.lf_coverage(j);
            prop_assert!((0.0..=1.0).contains(&cov));
            if let Some(acc) = m.lf_accuracy(j, &labels) {
                prop_assert!((0.0..=1.0).contains(&acc));
                prop_assert!(cov > 0.0);
            }
        }
        prop_assert!(m.coverage() >= m.overlap());
        prop_assert!(m.overlap() >= m.conflict());
    }
}

#[test]
fn abstain_only_matrix_gives_prior_everywhere() {
    let rows = vec![vec![ABSTAIN; 3]; 5];
    let matrix = LabelMatrix::from_votes(&rows).unwrap();
    let mut model = TripletMetal::new(2);
    model.fit(&matrix, Some(&[0.8, 0.2])).unwrap();
    for row in &rows {
        let p = model.predict_proba(row);
        assert!((p[0] - 0.8).abs() < 1e-9);
    }
}
