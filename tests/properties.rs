//! Property-based tests on the core invariants of the stack.
//!
//! Each property runs over 64 seeded random cases (the build environment has
//! no `proptest`, so a deterministic RNG drives the case generation — every
//! failure is reproducible from the printed case seed).

use activedp_repro::core::{aggregate, tune_threshold};
use activedp_repro::glasso::{graphical_lasso, GlassoConfig};
use activedp_repro::labelmodel::{DawidSkene, LabelModel, MajorityVote, TripletMetal};
use activedp_repro::lf::{LabelMatrix, ABSTAIN};
use activedp_repro::linalg::{
    covariance_matrix, entropy, lasso_quadratic_cd, softmax_inplace, Cholesky, CsrBuilder, Matrix,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

const CASES: u64 = 64;

fn case_rng(test: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(test.wrapping_mul(0x9E37_79B9).wrapping_add(case))
}

/// A well-formed vote matrix (votes in {-1, 0, 1}) with 1..=max_n rows and
/// 1..=max_m LFs.
fn vote_matrix(rng: &mut StdRng, max_n: usize, max_m: usize) -> Vec<Vec<i8>> {
    let m = rng.gen_range(1..=max_m);
    let n = rng.gen_range(1..=max_n);
    (0..n)
        .map(|_| (0..m).map(|_| rng.gen_range(0..3usize) as i8 - 1).collect())
        .collect()
}

/// A probability distribution over two classes.
fn binary_dist(rng: &mut StdRng) -> Vec<f64> {
    let p = rng.gen_range(0.0..=1.0);
    vec![1.0 - p, p]
}

#[test]
fn label_models_output_probability_simplexes() {
    for case in 0..CASES {
        let rng = &mut case_rng(1, case);
        let rows = vote_matrix(rng, 12, 5);
        let matrix = LabelMatrix::from_votes(&rows).unwrap();
        let models: Vec<Box<dyn LabelModel>> = vec![
            Box::new(MajorityVote::new(2)),
            Box::new(DawidSkene::new(2)),
            Box::new(TripletMetal::new(2)),
        ];
        for mut model in models {
            model.fit(&matrix, None).unwrap();
            for row in &rows {
                let p = model.predict_proba(row);
                assert_eq!(p.len(), 2, "case {case}");
                assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)), "case {case}");
                assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "case {case}");
            }
        }
    }
}

#[test]
fn label_matrix_roundtrip() {
    for case in 0..CASES {
        let rng = &mut case_rng(2, case);
        let rows = vote_matrix(rng, 10, 6);
        let m = LabelMatrix::from_votes(&rows).unwrap();
        assert_eq!(m.n_instances(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(m.row(i), row.as_slice());
        }
        // Column selection preserves content.
        let cols: Vec<usize> = (0..m.n_lfs()).rev().collect();
        let sel = m.select_columns(&cols).unwrap();
        for i in 0..m.n_instances() {
            for (k, &c) in cols.iter().enumerate() {
                assert_eq!(sel.get(i, k), m.get(i, c));
            }
        }
    }
}

#[test]
fn confusion_coverage_monotone_in_tau() {
    for case in 0..CASES {
        let rng = &mut case_rng(3, case);
        let n = rng.gen_range(1..20usize);
        let al: Vec<Vec<f64>> = (0..n).map(|_| binary_dist(rng)).collect();
        let lm_seed = rng.gen_range(0..1000u64);
        let lm: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let p = ((i as u64 * 7 + lm_seed) % 100) as f64 / 100.0;
                vec![1.0 - p, p]
            })
            .collect();
        let has_vote: Vec<bool> = (0..n).map(|i| (i as u64 + lm_seed) % 3 != 0).collect();
        let coverage = |tau: f64| {
            aggregate(&al, &lm, &has_vote, tau)
                .iter()
                .filter(|l| l.is_some())
                .count()
        };
        // Raising tau can only shrink the covered set.
        assert!(coverage(0.0) >= coverage(0.55), "case {case}");
        assert!(coverage(0.55) >= coverage(0.8), "case {case}");
        assert!(coverage(0.8) >= coverage(1.01), "case {case}");
    }
}

#[test]
fn tuned_threshold_is_a_valid_confidence() {
    for case in 0..CASES {
        let rng = &mut case_rng(4, case);
        let n = rng.gen_range(2..20usize);
        let al: Vec<Vec<f64>> = (0..n).map(|_| binary_dist(rng)).collect();
        let lm: Vec<Vec<f64>> = al.iter().rev().cloned().collect();
        let has_vote = vec![true; n];
        let truth: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let tau = tune_threshold(&al, &lm, &has_vote, &truth);
        assert!((0.0..=1.0).contains(&tau), "case {case}: tau {tau}");
    }
}

#[test]
fn entropy_bounds_hold() {
    for case in 0..CASES {
        let rng = &mut case_rng(5, case);
        let p = binary_dist(rng);
        let h = entropy(&p);
        assert!(h >= 0.0, "case {case}");
        assert!(h <= (2.0f64).ln() + 1e-12, "case {case}");
    }
}

#[test]
fn softmax_produces_distribution() {
    for case in 0..CASES {
        let rng = &mut case_rng(6, case);
        let len = rng.gen_range(1..6usize);
        let mut l: Vec<f64> = (0..len).map(|_| rng.gen_range(-30.0..=30.0)).collect();
        softmax_inplace(&mut l);
        assert!((l.iter().sum::<f64>() - 1.0).abs() < 1e-9, "case {case}");
        assert!(l.iter().all(|&x| x >= 0.0), "case {case}");
    }
}

#[test]
fn cholesky_reconstructs_spd_matrices() {
    for case in 0..CASES {
        let rng = &mut case_rng(7, case);
        let seed = rng.gen_range(0..500u64);
        let dim = rng.gen_range(1..6usize);
        // Build SPD as B Bᵀ + I from a deterministic pseudo-random B.
        let b = Matrix::from_fn(dim, dim, |i, j| {
            (((seed as usize + i * 31 + j * 17) % 13) as f64 - 6.0) / 6.0
        });
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diagonal(1.0).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.factor_l().matmul(&ch.factor_l().transpose()).unwrap();
        for i in 0..dim {
            for j in 0..dim {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-8, "case {case}");
            }
        }
    }
}

#[test]
fn covariance_diagonal_nonnegative() {
    for case in 0..CASES {
        let rng = &mut case_rng(8, case);
        let seed = rng.gen_range(0..500u64);
        let n = rng.gen_range(2..12usize);
        let p = rng.gen_range(1..5usize);
        let data = Matrix::from_fn(n, p, |i, j| {
            (((seed as usize + i * 13 + j * 7) % 23) as f64 - 11.0) * 0.1
        });
        let cov = covariance_matrix(&data).unwrap();
        for j in 0..p {
            assert!(cov[(j, j)] >= -1e-12, "case {case}");
        }
        assert!(cov.is_symmetric(1e-12), "case {case}");
    }
}

#[test]
fn lasso_solution_sparsity_grows_with_penalty() {
    for case in 0..CASES {
        let rng = &mut case_rng(9, case);
        let s0 = rng.gen_range(-1.0..=1.0);
        let s1 = rng.gen_range(-1.0..=1.0);
        let v = Matrix::identity(2);
        let s = vec![s0, s1];
        let nnz = |rho: f64| {
            let mut beta = vec![0.0; 2];
            lasso_quadratic_cd(&v, &s, rho, &mut beta, Default::default()).unwrap();
            beta.iter().filter(|&&b| b != 0.0).count()
        };
        assert!(nnz(0.01) >= nnz(0.5), "case {case}");
        assert!(nnz(0.5) >= nnz(2.0), "case {case}");
    }
}

#[test]
fn csr_matvec_matches_dense() {
    for case in 0..CASES {
        let rng = &mut case_rng(10, case);
        let n = rng.gen_range(1..8usize);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.gen_range(-5.0..=5.0)).collect())
            .collect();
        let mut b = CsrBuilder::new(3);
        for r in &rows {
            b.push_row(r.iter().enumerate().map(|(j, &x)| (j as u32, x)).collect());
        }
        let sparse = b.finish();
        let dense = Matrix::from_rows(&rows).unwrap();
        let v = vec![0.3, -1.5, 2.0];
        let sv = sparse.matvec(&v).unwrap();
        let dv = dense.matvec(&v).unwrap();
        for (a, c) in sv.iter().zip(&dv) {
            assert!((a - c).abs() < 1e-9, "case {case}");
        }
    }
}

#[test]
fn lf_accuracy_and_coverage_in_unit_interval() {
    for case in 0..CASES {
        let rng = &mut case_rng(11, case);
        let rows = vote_matrix(rng, 15, 4);
        let m = LabelMatrix::from_votes(&rows).unwrap();
        let labels: Vec<usize> = (0..m.n_instances()).map(|i| i % 2).collect();
        for j in 0..m.n_lfs() {
            let cov = m.lf_coverage(j);
            assert!((0.0..=1.0).contains(&cov), "case {case}");
            if let Some(acc) = m.lf_accuracy(j, &labels) {
                assert!((0.0..=1.0).contains(&acc), "case {case}");
                assert!(cov > 0.0, "case {case}");
            }
        }
        assert!(m.coverage() >= m.overlap(), "case {case}");
        assert!(m.overlap() >= m.conflict(), "case {case}");
    }
}

/// Votes with planted per-LF accuracies on random binary ground truth:
/// each LF fires with probability `cov` and is correct with its accuracy.
fn planted_matrix(rng: &mut StdRng, accs: &[f64], cov: f64, n: usize) -> LabelMatrix {
    let rows: Vec<Vec<i8>> = (0..n)
        .map(|_| {
            let y = usize::from(rng.gen::<f64>() < 0.5);
            accs.iter()
                .map(|&a| {
                    if rng.gen::<f64>() >= cov {
                        ABSTAIN
                    } else if rng.gen::<f64>() < a {
                        y as i8
                    } else {
                        (1 - y) as i8
                    }
                })
                .collect()
        })
        .collect();
    LabelMatrix::from_votes(&rows).unwrap()
}

#[test]
fn dawid_skene_confusion_rows_are_distributions() {
    for case in 0..CASES {
        let rng = &mut case_rng(12, case);
        let rows = vote_matrix(rng, 30, 6);
        let matrix = LabelMatrix::from_votes(&rows).unwrap();
        let balance = if case % 2 == 0 {
            None
        } else {
            Some(vec![0.3, 0.7])
        };
        let mut ds = DawidSkene::new(2);
        ds.fit(&matrix, balance.as_deref()).unwrap();
        // The estimated prior is a distribution…
        let prior = ds.prior();
        assert!(
            (prior.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "case {case}"
        );
        assert!(prior.iter().all(|&p| (0.0..=1.0).contains(&p)));
        for j in 0..matrix.n_lfs() {
            // …each confusion row P(vote | Y = y) is a distribution…
            for (y, row) in ds.confusion(j).iter().enumerate() {
                assert!(
                    (row.iter().sum::<f64>() - 1.0).abs() < 1e-9,
                    "case {case} LF {j} class {y}: {row:?}"
                );
                assert!(
                    row.iter().all(|&p| (0.0..=1.0).contains(&p)),
                    "case {case} LF {j} class {y}: {row:?}"
                );
            }
            // …and the derived firing-conditional accuracy is a rate.
            let acc = ds.lf_accuracy(j);
            assert!((0.0..=1.0).contains(&acc), "case {case} LF {j}: {acc}");
        }
        // Posteriors stay on the simplex for every observed row.
        for row in &rows {
            let p = ds.predict_proba(row);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "case {case}");
        }
    }
}

#[test]
fn dawid_skene_recovery_improves_with_sample_size() {
    // Estimation error of the planted LF accuracies must shrink as the
    // vote matrix grows (averaged over seeds; each run is deterministic).
    let accs = [0.9, 0.75, 0.6];
    let sizes = [250usize, 1000, 4000];
    let mean_err = |n: usize| -> f64 {
        let mut total = 0.0;
        for seed in 0..8u64 {
            let rng = &mut case_rng(13, seed * 31 + n as u64);
            let matrix = planted_matrix(rng, &accs, 0.8, n);
            let mut ds = DawidSkene::new(2);
            ds.fit(&matrix, Some(&[0.5, 0.5])).unwrap();
            total += accs
                .iter()
                .enumerate()
                .map(|(j, &a)| (ds.lf_accuracy(j) - a).abs())
                .sum::<f64>()
                / accs.len() as f64;
        }
        total / 8.0
    };
    let errs: Vec<f64> = sizes.iter().map(|&n| mean_err(n)).collect();
    assert!(
        errs[1] < errs[0] && errs[2] < errs[1],
        "errors not monotone in sample size: {errs:?}"
    );
    assert!(errs[2] < 0.03, "large-sample error too big: {errs:?}");
}

#[test]
fn glasso_precision_is_symmetric_and_finite() {
    for case in 0..CASES {
        let rng = &mut case_rng(14, case);
        let n = rng.gen_range(8..40usize);
        let p = rng.gen_range(2..6usize);
        let data = Matrix::from_fn(n, p, |_, _| rng.gen_range(-2.0..=2.0));
        let s = covariance_matrix(&data).unwrap();
        let cfg = GlassoConfig {
            rho: rng.gen_range(0.01..=0.5),
            ..GlassoConfig::default()
        };
        let res = graphical_lasso(&s, cfg).unwrap();
        assert!(res.precision.all_finite(), "case {case}");
        assert!(res.covariance.all_finite(), "case {case}");
        assert!(res.precision.is_symmetric(1e-9), "case {case}");
        assert!(res.covariance.is_symmetric(1e-9), "case {case}");
        // The regularised covariance keeps positive variances.
        for j in 0..p {
            assert!(res.covariance[(j, j)] > 0.0, "case {case} var {j}");
            assert!(res.precision[(j, j)] > 0.0, "case {case} prec {j}");
        }
    }
}

#[test]
fn glasso_penalty_monotonically_sparsifies_edges() {
    let edge_count = |s: &Matrix, rho: f64| -> usize {
        let cfg = GlassoConfig {
            rho,
            ..GlassoConfig::default()
        };
        let prec = graphical_lasso(s, cfg).unwrap().precision;
        let p = prec.nrows();
        let mut edges = 0;
        for i in 0..p {
            for j in (i + 1)..p {
                if prec[(i, j)].abs() > 1e-8 {
                    edges += 1;
                }
            }
        }
        edges
    };
    for case in 0..CASES {
        let rng = &mut case_rng(15, case);
        let n = rng.gen_range(10..40usize);
        let p = rng.gen_range(2..5usize);
        let data = Matrix::from_fn(n, p, |_, _| rng.gen_range(-1.5..=1.5));
        let s = covariance_matrix(&data).unwrap();
        let counts: Vec<usize> = [0.01, 0.1, 0.5, 2.0, 10.0]
            .iter()
            .map(|&rho| edge_count(&s, rho))
            .collect();
        for w in counts.windows(2) {
            assert!(w[1] <= w[0], "case {case}: edge counts {counts:?}");
        }
        // A penalty dominating every covariance entry removes all edges.
        assert_eq!(*counts.last().unwrap(), 0, "case {case}: {counts:?}");
    }
}

#[test]
fn abstain_only_matrix_gives_prior_everywhere() {
    let rows = vec![vec![ABSTAIN; 3]; 5];
    let matrix = LabelMatrix::from_votes(&rows).unwrap();
    let mut model = TripletMetal::new(2);
    model.fit(&matrix, Some(&[0.8, 0.2])).unwrap();
    for row in &rows {
        let p = model.predict_proba(row);
        assert!((p[0] - 0.8).abs() < 1e-9);
    }
}
