//! Determinism pins for the scenario-diversity subsystem: routed
//! dual-oracle sessions and streaming drift.
//!
//! The contracts pinned here:
//!
//! * a routed, drifted trajectory is **bitwise identical** serial vs
//!   parallel (`spec.session.parallel`), like every plain session — the
//!   router and the drift mutation live outside the fixed-chunk kernels,
//!   so thread count can never touch them (the CI matrix re-runs this
//!   suite under `ADP_NUM_THREADS=1` and `=4` for the process-wide
//!   budget path);
//! * the post-drift pool is ordinary data to the kernels: a classifier
//!   fit over a drift-mutated dataset is bitwise identical across worker
//!   counts 1/2/3/7;
//! * snapshot/resume at **every refit boundary** of a routed drifted
//!   run — before, on and after the drift boundary — lands bitwise on
//!   the uninterrupted run, for every drift shape (label shift,
//!   covariate rotation, arriving pool);
//! * drift application itself is pure: applying the same spec to the
//!   same splits twice yields identical bytes.

use activedp_repro::classifier::{LogRegConfig, LogisticRegression, Targets};
use activedp_repro::core::{Engine, ScenarioSpec};
use activedp_repro::data::{DatasetId, DatasetSpec, DriftSpec, Scale};
use activedp_repro::linalg::parallel::Execution;

/// Worker counts swept for the kernel-level pin (matches
/// `tests/determinism.rs`).
const THREADS: [usize; 4] = [1, 2, 3, 7];

/// A routed, drifted scenario: noisy biased oracle under uncertainty
/// routing, drift at the schedule's mid boundary.
fn routed_spec(dataset: DatasetId, drift: DriftSpec, parallel: bool) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(DatasetSpec {
        id: dataset,
        scale: Scale::Tiny,
        seed: 7,
    });
    spec.session.seed = 11;
    spec.session.parallel = parallel;
    spec.session.oracle = "noisy:0.8>1@uncertainty:0.3".parse().expect("grammar");
    spec.schedule = activedp_repro::core::BudgetSchedule::FixedBatch { k: 2 };
    spec.budget = 12;
    spec.drift = drift;
    spec.validate().expect("spec validates");
    spec
}

fn final_bytes(mut engine: Engine) -> Vec<u8> {
    engine.run_schedule().expect("schedule runs");
    engine.snapshot().expect("snapshot captures").to_bytes()
}

#[test]
fn routed_drifted_trajectory_is_bitwise_serial_vs_parallel() {
    for drift in [
        DriftSpec::LabelShift { at: 6, prior: 0.8 },
        DriftSpec::ArrivingPool { per_refit: 3 },
    ] {
        let serial =
            final_bytes(Engine::from_spec(routed_spec(DatasetId::Youtube, drift, false)).unwrap());
        let parallel =
            final_bytes(Engine::from_spec(routed_spec(DatasetId::Youtube, drift, true)).unwrap());
        // The snapshots embed the spec, which differs in the `parallel`
        // flag alone — compare the trajectories through a second serial
        // run instead for the exact-bytes check, and the parallel run
        // against it field-by-field.
        let again =
            final_bytes(Engine::from_spec(routed_spec(DatasetId::Youtube, drift, false)).unwrap());
        assert_eq!(serial, again, "{drift}: serial rerun not reproducible");
        let a = activedp_repro::core::SessionSnapshot::from_bytes(&serial).unwrap();
        let b = activedp_repro::core::SessionSnapshot::from_bytes(&parallel).unwrap();
        assert_eq!(a.state, b.state, "{drift}: loop state diverged");
        assert_eq!(a.routed, b.routed, "{drift}: route ledger diverged");
        assert_eq!(
            a.sampler_rng, b.sampler_rng,
            "{drift}: sampler RNG diverged"
        );
        assert_eq!(a.oracle, b.oracle, "{drift}: oracle state diverged");
    }
}

#[test]
fn classifier_fit_over_drifted_pool_is_bitwise_across_threads() {
    // Drift-mutate a dense split, then drive the chunked gradient kernel
    // over it at every worker count: post-drift data is ordinary data.
    let spec = DatasetSpec {
        id: DatasetId::Census,
        scale: Scale::Tiny,
        seed: 7,
    };
    let base = spec.generate().expect("dataset generates");
    let split = DriftSpec::CovariateDrift {
        at: 6,
        rotation: 0.4,
    }
    .apply(&base)
    .expect("covariate drift rewrites the split");

    let features = match &split.train.features {
        activedp_repro::data::FeatureSet::Dense(m) => m.clone(),
        _ => unreachable!("census is dense"),
    };
    let rows: Vec<usize> = (0..features.nrows()).collect();
    let labels = split.train.labels.clone();
    let cfg = LogRegConfig {
        max_iters: 12,
        ..LogRegConfig::default()
    };
    let fit = |exec: Execution| {
        let mut m = LogisticRegression::new(2, features.ncols(), cfg);
        m.fit_with(&features, &rows, Targets::Hard(&labels), None, exec)
            .expect("fit succeeds");
        m.weights()
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<u64>>()
    };
    let serial = fit(Execution::Serial);
    for t in THREADS {
        assert_eq!(
            serial,
            fit(Execution::with_threads(t)),
            "drifted-pool logreg, threads={t}"
        );
    }
}

#[test]
fn drift_application_is_pure() {
    let spec = DatasetSpec {
        id: DatasetId::Census,
        scale: Scale::Tiny,
        seed: 3,
    };
    let base = spec.generate().unwrap();
    for drift in [
        DriftSpec::LabelShift { at: 4, prior: 0.7 },
        DriftSpec::CovariateDrift {
            at: 4,
            rotation: 0.25,
        },
    ] {
        let a = drift.apply(&base).unwrap();
        let b = drift.apply(&base).unwrap();
        assert_eq!(a.train.labels, b.train.labels, "{drift}");
        assert_eq!(a.test.labels, b.test.labels, "{drift}");
        if let (
            activedp_repro::data::FeatureSet::Dense(ma),
            activedp_repro::data::FeatureSet::Dense(mb),
        ) = (&a.train.features, &b.train.features)
        {
            let ba: Vec<u64> = ma.as_slice().iter().map(|x| x.to_bits()).collect();
            let bb: Vec<u64> = mb.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(ba, bb, "{drift}");
        }
    }
    // The pool-rewriting shapes stop there: `ArrivingPool` and `None`
    // leave the split untouched (visibility is the engine's schedule).
    assert!(DriftSpec::ArrivingPool { per_refit: 5 }
        .apply(&base)
        .is_none());
    assert!(DriftSpec::None.apply(&base).is_none());
}

/// Snapshot/resume at every refit boundary of a routed drifted run lands
/// bitwise on the uninterrupted run — including the boundary *on* which
/// the drift applies and every boundary after it.
#[test]
fn snapshot_resume_at_every_refit_boundary_is_bitwise() {
    let shapes = [
        (
            DatasetId::Youtube,
            DriftSpec::LabelShift { at: 6, prior: 0.8 },
        ),
        (
            DatasetId::Census,
            DriftSpec::CovariateDrift {
                at: 6,
                rotation: 0.4,
            },
        ),
        (DatasetId::Youtube, DriftSpec::ArrivingPool { per_refit: 3 }),
    ];
    for (dataset, drift) in shapes {
        let spec = routed_spec(dataset, drift, false);
        let straight = final_bytes(Engine::from_spec(spec.clone()).unwrap());
        let n_batches = spec.schedule.n_batches(spec.budget);
        assert!(n_batches >= 3, "schedule too small to slice meaningfully");
        for boundary in 1..n_batches {
            let mut engine = Engine::from_spec(spec.clone()).unwrap();
            engine.run_schedule_batches(boundary).unwrap();
            let snapshot = engine.snapshot().unwrap();
            // Round-trip the snapshot through bytes: what a spill file,
            // the WAL checkpoint and the distributed sweep all ship.
            let bytes = snapshot.to_bytes();
            let restored = activedp_repro::core::SessionSnapshot::from_bytes(&bytes).unwrap();
            let resumed = Engine::resume(restored).unwrap();
            assert_eq!(
                final_bytes(resumed),
                straight,
                "{dataset:?}/{drift}: resume at batch {boundary} diverged"
            );
        }
    }
}
